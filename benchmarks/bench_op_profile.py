"""Analysis — operation-time split (the paper's Figure-4 explanation).

The paper attributes Figure 4's divergence to the add-buffer operation
dominating the baseline as n grows.  This benchmark measures the
wire/merge/buffer wall-clock split for both algorithms across b, and the
candidate-list statistics that drive it.

Run: ``pytest benchmarks/bench_op_profile.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from conftest import run_once, scaled

from repro.experiments.list_stats import collect_list_stats
from repro.experiments.profiling import profile_operations
from repro.experiments.workloads import FIG4_NET, TABLE1_NETS, build_net
from repro.library.generators import paper_library

SPEC = scaled(TABLE1_NETS[1])
TRUNK = scaled(FIG4_NET)


@pytest.mark.parametrize("algorithm", ["lillis", "fast"])
@pytest.mark.parametrize("size", [8, 32])
def test_op_profile(benchmark, algorithm, size):
    tree = build_net(SPEC)
    library = paper_library(size, jitter=0.03, seed=size)
    benchmark.extra_info.update(algorithm=algorithm, library_size=size)
    profile = run_once(benchmark, profile_operations, tree, library,
                       algorithm=algorithm)
    benchmark.extra_info["buffer_fraction"] = round(profile.buffer_fraction, 3)


def test_buffer_share_claims(benchmark):
    """At b = 32 the baseline spends a much larger share of its time
    adding buffers than the fast algorithm does — the imbalance the
    paper removes."""
    library = paper_library(32, jitter=0.03, seed=32)

    def profiles():
        tree = build_net(SPEC)
        return (
            profile_operations(tree, library, algorithm="lillis"),
            profile_operations(tree, library, algorithm="fast"),
        )

    lillis, fast = run_once(benchmark, profiles)
    print()
    print(f"  {lillis}")
    print(f"  {fast}")
    assert lillis.buffer_fraction > fast.buffer_fraction


def test_list_statistics(benchmark):
    """Candidate lists stay far below the b n + 1 bound; their mean
    growth with n is what widens the Figure-4 gap."""
    library = paper_library(32, jitter=0.03, seed=32)

    def stats():
        out = {}
        for positions in (1000, 4000):
            tree = build_net(TRUNK, positions_override=positions)
            out[tree.num_buffer_positions] = collect_list_stats(tree, library)
        return out

    results = run_once(benchmark, stats)
    print()
    means = []
    for positions in sorted(results):
        print(f"  n={positions}: {results[positions]}")
        means.append(results[positions].mean)
        assert results[positions].maximum <= results[positions].theoretical_bound
    assert means[-1] > means[0]
