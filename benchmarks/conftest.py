"""Shared configuration for the benchmark suite.

Scales: the paper's instances (n up to 66k, C on a 400 MHz SPARC) are
infeasible for a pure-Python quadratic baseline, so every benchmark runs
the DESIGN.md-documented scaled instances.  Set the environment variable
``REPRO_BENCH_SCALE`` (default 1.0) to grow or shrink the position
counts, e.g. ``REPRO_BENCH_SCALE=2 pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.workloads import NetSpec


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(spec: NetSpec) -> NetSpec:
    factor = bench_scale()
    return spec if factor == 1.0 else spec.scale(factor)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one warm round.

    The DP is deterministic and the instances are large; one round keeps
    the whole suite's wall time sane while perf_counter resolution
    (~100 ns) is irrelevant at the tens-of-milliseconds scale.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
