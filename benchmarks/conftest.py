"""Shared configuration for the benchmark suite.

Scales: the paper's instances (n up to 66k, C on a 400 MHz SPARC) are
infeasible for a pure-Python quadratic baseline, so every benchmark runs
the DESIGN.md-documented scaled instances.  Set the environment variable
``REPRO_BENCH_SCALE`` (default 1.0) to grow or shrink the position
counts, e.g. ``REPRO_BENCH_SCALE=2 pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.workloads import NetSpec


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(spec: NetSpec) -> NetSpec:
    factor = bench_scale()
    return spec if factor == 1.0 else spec.scale(factor)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def batch_corpus(count: int, positions: int):
    """The batch-throughput corpus: small random nets, segmented.

    Shared by ``bench_batch.py`` and ``persist.py`` so the persisted
    trajectory measures exactly the corpus the benchmark cells do.
    """
    from repro.tree.builders import random_tree_net
    from repro.tree.node import Driver
    from repro.tree.segmenting import segment_to_position_count
    from repro.units import ps

    trees = []
    for seed in range(count):
        base = random_tree_net(
            12, seed=seed, required_arrival=(ps(300.0), ps(2000.0)),
            driver=Driver(resistance=200.0),
        )
        trees.append(segment_to_position_count(base, positions))
    return trees


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one warm round.

    The DP is deterministic and the instances are large; one round keeps
    the whole suite's wall time sane while perf_counter resolution
    (~100 ns) is irrelevant at the tens-of-milliseconds scale.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
