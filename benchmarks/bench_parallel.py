"""Partitioned parallel solve benchmark: ``BENCH_PR7.json``.

Measures :func:`~repro.parallel.solver.solve_partitioned` through a warm
:class:`~repro.core.batch.SolverPool` on single large nets — the
workload the partitioner exists for — against the serial compiled solve
of the *same pre-compiled net*.  Two topology sweeps:

* ``random`` (gated) — branchy random-topology nets segmented to the
  position targets.  These partition well: balanced cuts cover 70–90 %
  of the instruction stream and the worker pool runs them concurrently.
* ``fig4_trunk`` (context, never gated) — the paper's 2-pin trunk.  A
  chain-shaped DP nests every subtree inside the next, the planner
  reports non-viability and the solve falls back to serial; the cells
  document that the fallback costs nothing (speedup ~1.0).

Bit-identity of the partitioned result against the serial solve —
slack, assignment and DP accounting — is asserted before anything is
timed, so speedups can never come from solving a different problem.
``speedup`` is serial/partitioned wall-clock (bigger is better).

Note the physics: instruction *coverage* overstates the parallelizable
*work* share, because candidate frontiers grow toward the root — the
serial residual executes the longest lists.  The busy/residual
decomposition puts the ideal 4-worker speedup near 2x at 5·10^4
positions and rising with size; the gate below is set under that
ceiling and only where partitioning is meant to win.

``ci_gate`` thresholds are embedded in the output and enforced by
``tools/perf_gate.py check_parallel`` against a freshly generated
file: for every gated position level (actual positions >=
``min_positions``) the best speedup among cells with at least
``min_workers`` workers must reach ``min_speedup``.  Gating is skipped
(with a note) when the generating machine has fewer than
``min_workers`` cores — a single-core box cannot honestly measure
multi-core speedup; ``meta.cpu_count`` records the truth.

Run::

    PYTHONPATH=src python benchmarks/bench_parallel.py \\
        [--out BENCH_PR7.json] [--scale 1.0] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.api import insert_buffers
from repro.core.batch import SolverPool
from repro.core.schedule import compile_net
from repro.experiments.workloads import FIG4_NET, build_net
from repro.library.generators import paper_library
from repro.tree.builders import random_tree_net
from repro.tree.node import Driver
from repro.tree.segmenting import segment_to_position_count
from repro.units import ps

#: Worker counts swept per cell (1 = the serial baseline through the
#: same pool policy, i.e. the fallback path's overhead).
WORKER_SWEEP = (1, 2, 4, 8)

#: Random-topology position targets at scale 1.0 (the gated sweep).
RANDOM_POSITION_SWEEP = (10_000, 100_000, 1_000_000)

#: Figure 4 trunk position targets at scale 1.0 (fallback context; the
#: trunk's serial DP is superlinear in n, so the sweep stays modest).
TRUNK_POSITION_SWEEP = (10_000, 25_000)

LIBRARY_SIZE = 32

CI_GATE = {
    # Position levels with at least this many *actual* positions are
    # gated; smaller cells are recorded as overhead-floor context.
    "min_positions": 100_000,
    # Only cells with at least this many workers count toward the
    # gate, and gating is skipped entirely on machines with fewer
    # cores than this (meta.cpu_count tells the checker).
    "min_workers": 4,
    # Floor on the *best* serial/partitioned speedup among qualifying
    # cells at each gated position level.  Amdahl over the measured
    # busy/residual split caps 4 workers near 2x, so 1.8x demands the
    # dispatch+splice machinery stay cheap.
    "min_speedup": 1.8,
}


def _random_net(positions: int, seed: int = 13):
    base = random_tree_net(
        max(32, positions // 300), seed=seed,
        required_arrival=(ps(500.0), ps(2500.0)),
        driver=Driver(resistance=200.0),
    )
    return segment_to_position_count(base, positions)


def measure_cell(compiled, library, workers: int, serial_seconds: float,
                 reference, repeats: int) -> Dict:
    """One (net, worker count) cell: parity check, then warm timing."""
    with SolverPool(
        library, jobs=workers, backend="soa", parallel="always",
        policy="static"
    ) as pool:
        # Warm-up doubles as the honesty guard: the partitioned result
        # must be bit-identical to the serial solve of the same net.
        result = pool.solve([compiled])[0]
        if (result.slack != reference.slack
                or result.assignment != reference.assignment
                or result.stats.candidates_generated
                != reference.stats.candidates_generated):
            raise AssertionError(
                f"partitioned/serial mismatch at workers={workers}: "
                f"{result.slack} != {reference.slack}"
            )
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            pool.solve([compiled])
            best = min(best, time.perf_counter() - started)
        report = pool.parallel_stats()["last"]
    if report is None:
        # jobs=1: the pool never routes, the cell is the pure serial
        # baseline through the same pool plumbing.
        report = {
            "engaged": False, "reason": "single worker (serial baseline)",
            "partitions": 0, "coverage": 0.0, "residual_fraction": 1.0,
            "plan_seconds": 0.0, "dispatch_seconds": 0.0,
            "worker_busy_seconds": 0.0, "pool_utilization": 0.0,
        }
    return {
        "workers": workers,
        "partitioned_seconds": best,
        "speedup": serial_seconds / best,
        "engaged": report["engaged"],
        "fallback_reason": report["reason"],
        "partitions": report["partitions"],
        "coverage": report["coverage"],
        "residual_fraction": report["residual_fraction"],
        "plan_seconds": report["plan_seconds"],
        "dispatch_seconds": report["dispatch_seconds"],
        "worker_busy_seconds": report["worker_busy_seconds"],
        "pool_utilization": report["pool_utilization"],
    }


def measure_net(tree, library, repeats: int) -> Dict:
    compiled = compile_net(tree, library)
    positions = compiled.num_buffer_positions
    effective = repeats if positions < 50_000 else 1
    serial_best = float("inf")
    reference = None
    for _ in range(max(effective, 1)):
        started = time.perf_counter()
        reference = insert_buffers(compiled, library, backend="soa")
        serial_best = min(serial_best, time.perf_counter() - started)
    cells = [
        dict(
            measure_cell(
                compiled, library, workers, serial_best, reference,
                effective,
            ),
            positions=positions,
        )
        for workers in WORKER_SWEEP
    ]
    return {
        "positions": positions,
        "instructions": len(compiled.ops),
        "serial_seconds": serial_best,
        "baseline_slack_seconds": reference.slack,
        "repeats": effective,
        "cells": cells,
    }


def collect(scale: float, repeats: int) -> Dict:
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    random_points: List[Dict] = []
    for target in RANDOM_POSITION_SWEEP:
        positions = max(int(target * scale), 100)
        point = measure_net(_random_net(positions), library, repeats)
        point["target_positions"] = target
        random_points.append(point)
    trunk_points: List[Dict] = []
    for target in TRUNK_POSITION_SWEEP:
        positions = max(int(target * scale), 100)
        point = measure_net(
            build_net(FIG4_NET, positions_override=positions),
            library, repeats,
        )
        point["target_positions"] = target
        trunk_points.append(point)
    return {
        "meta": {
            "bench": "PR7 partitioned parallel solver",
            "scale": scale,
            "repeats": repeats,
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count() or 1,
            "algorithm": "fast",
            "backend": "soa",
            "library_size": LIBRARY_SIZE,
            "workload": (
                "single large nets cut at balanced subtree boundaries "
                "and solved across a warm SolverPool process pool "
                "(parallel='always'), vs the serial compiled-soa solve "
                "of the same pre-compiled net; bit-identity asserted "
                "before timing; timings best-of-repeats on a warm pool"
            ),
        },
        "ci_gate": dict(CI_GATE),
        "random": {
            "topology": "random",
            "gated": True,
            "points": random_points,
        },
        "fig4_trunk": {
            "topology": "trunk",
            "gated": False,
            "net": FIG4_NET.name,
            "points": trunk_points,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Persist the PR7 partitioned-solve trajectory to JSON.")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_PR7.json",
        help="output path (default: BENCH_PR7.json at the repo root)")
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        help="instance scale factor (default: $REPRO_BENCH_SCALE or 1.0)")
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of repeats per cell (default 3; cells at >= 50k "
             "positions drop to 1 automatically)")
    args = parser.parse_args(argv)

    payload = collect(args.scale, args.repeats)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    for section in ("random", "fig4_trunk"):
        print(f"{section}:")
        for point in payload[section]["points"]:
            print(f"  n={point['positions']:>7}  serial "
                  f"{point['serial_seconds']:8.2f}s")
            for cell in point["cells"]:
                note = "" if cell["engaged"] else "  (serial fallback)"
                print(
                    f"    workers={cell['workers']:>2}"
                    f"  partitioned {cell['partitioned_seconds']:8.2f}s"
                    f"  speedup {cell['speedup']:5.2f}x"
                    f"  parts={cell['partitions']:>3}"
                    f"  cov={cell['coverage']:.2f}{note}"
                )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
