"""Throughput benchmarks for the new execution layers.

Two axes the paper never measured, but a production flow lives by:

* **Candidate-store backend** — object lists versus structure-of-arrays
  (``backend="soa"``) on the long-candidate-list trunk workload.  The
  baseline Lillis scan is where the SoA arrays pay off most (its
  ``O(b k)`` inner loops vectorize wholesale); the fast algorithm's
  ``O(k + b)`` add-buffer step leaves little bulk work per node, so
  parity there is the expected outcome.
* **Batch engine** — ``solve_many`` over a corpus of nets, serial
  versus ``jobs=2`` worker processes.  On multi-core machines the batch
  speedup approaches the job count; the per-net results are asserted
  identical either way.

Run: ``pytest benchmarks/bench_batch.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from conftest import batch_corpus, run_once, scaled

from repro.core.api import insert_buffers
from repro.core.batch import solve_many
from repro.experiments.workloads import FIG4_NET, build_net
from repro.library.generators import paper_library

TRUNK = scaled(FIG4_NET)
LIBRARY_SIZE = 32


@pytest.mark.parametrize("algorithm", ["lillis", "fast"])
@pytest.mark.parametrize("backend", ["object", "soa"])
def test_backend_headtohead(benchmark, algorithm, backend):
    """Object versus SoA on the trunk net (long candidate lists)."""
    tree = build_net(TRUNK, positions_override=TRUNK.target_positions // 2)
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    benchmark.extra_info.update(backend=backend,
                                positions=tree.num_buffer_positions,
                                library_size=LIBRARY_SIZE)
    result = run_once(benchmark, insert_buffers, tree, library,
                      algorithm=algorithm, backend=backend)
    benchmark.extra_info.update(slack=result.slack)


def test_backend_speedup_claim(scale):
    """SoA must beat object lists for the Lillis scans on long lists."""
    import time

    positions = TRUNK.target_positions // 2
    tree = build_net(TRUNK, positions_override=positions)
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    timings = {}
    results = {}
    for backend in ("object", "soa"):
        started = time.perf_counter()
        results[backend] = insert_buffers(tree, library, algorithm="lillis",
                                          backend=backend)
        timings[backend] = time.perf_counter() - started
    speedup = timings["object"] / timings["soa"]
    print(f"\nlillis object {timings['object']:.3f}s vs soa "
          f"{timings['soa']:.3f}s -> {speedup:.2f}x")
    assert results["object"].slack == results["soa"].slack
    assert results["object"].assignment == results["soa"].assignment
    if positions < 3000:
        pytest.skip(
            f"n={positions}: candidate lists too short for the array win "
            "(raise REPRO_BENCH_SCALE to assert the speedup)"
        )
    # The vectorized O(b k) scans should win clearly on this workload.
    assert speedup > 1.2


@pytest.mark.parametrize("precompile", [False, True])
@pytest.mark.parametrize("jobs", [1, 2])
def test_batch_jobs(benchmark, jobs, precompile, scale):
    """solve_many over a corpus: serial vs. workers, trees vs. compiled.

    ``precompile=True`` is the default path: nets compile once in the
    parent and workers receive flat CompiledNet payloads (no per-solve
    validation or tree pickling).
    """
    trees = batch_corpus(8, max(int(150 * scale), 30))
    library = paper_library(8, jitter=0.03, seed=8)
    benchmark.extra_info.update(jobs=jobs, nets=len(trees),
                                precompile=precompile)
    results = run_once(benchmark, solve_many, trees, library, jobs=jobs,
                       precompile=precompile)
    benchmark.extra_info.update(total_buffers=sum(r.num_buffers
                                                  for r in results))


def test_batch_results_identical_across_jobs(scale):
    """Whatever the wall-clock story, jobs must not change answers."""
    trees = batch_corpus(6, max(int(120 * scale), 30))
    library = paper_library(8, jitter=0.03, seed=8)
    serial = solve_many(trees, library, jobs=1)
    parallel = solve_many(trees, library, jobs=2)
    assert [r.slack for r in serial] == [r.slack for r in parallel]
    assert [r.assignment for r in serial] == [r.assignment for r in parallel]
