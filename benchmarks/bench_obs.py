"""Observability overhead benchmark — ``BENCH_PR10.json``.

The observability layer's core promise is that *not using it is free*:
with no profiler and no tracer installed, every instrumented layer pays
a single thread-local read per solve (``instrument_ops`` returns the op
callables unchanged), plus one histogram observation per solve for the
always-on ``DPStats`` feed.  This benchmark prices that promise on the
Figure-4 trunk workload (compiled solve, ``auto``-resolved backend)
against a hard-bypassed baseline (``repro.obs.profiler.set_bypass``,
which removes even the entry checks), and records — ungated — what
fully enabled profiling + tracing costs.

Measured modes, interleaved within each round so all three see the same
background drift:

* ``bypass``   — ``set_bypass(True)``: the instrumentation entry checks
  short-circuit; the closest honest stand-in for "the code before the
  observability layer existed".
* ``disabled`` — the production default: observability importable and
  polled, nothing installed.  **Gated**: must stay within
  ``ci_gate.max_disabled_over_bypass`` (2%) of the bypass baseline.
* ``enabled``  — ``profile_scope`` + ``trace_scope`` active, default
  sampling.  Recorded as context; timed wrappers around every kernel op
  are expected to cost real time.

``ci_gate`` thresholds are embedded in the output and enforced by
``tools/perf_gate.py`` against a freshly generated file.

Run::

    PYTHONPATH=src python benchmarks/bench_obs.py \\
        [--out BENCH_PR10.json] [--scale 1.0] [--repeats 5]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.api import insert_buffers
from repro.core.schedule import compile_net
from repro.core.stores import resolve_backend
from repro.experiments.workloads import FIG4_NET, build_net
from repro.library.generators import paper_library
from repro.obs.profiler import KernelProfiler, profile_scope, set_bypass
from repro.obs.spans import Tracer, trace_scope

#: Figure-4 trunk size at scale 1.0 (the paper's mid sweep point; large
#: enough that per-instruction costs dominate fixed solve overhead).
FULL_POSITIONS = 4000
LIBRARY_SIZE = 32

CI_GATE = {
    # The disabled observability path (thread-local poll + one DPStats
    # histogram observation per solve) must stay within 2% of the
    # hard-bypassed baseline on the gated workload.
    "max_disabled_over_bypass": 1.02,
}


def measure(scale: float, repeats: int) -> Dict:
    positions = max(250, int(round(FULL_POSITIONS * scale)))
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    tree = build_net(FIG4_NET, positions_override=positions)
    backend = resolve_backend("auto")
    compiled = compile_net(tree, library)

    def solve() -> None:
        insert_buffers(compiled, library, backend=backend)

    solve()  # warm schedule/store caches before timing anything

    def timed(fn) -> float:
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    best = {"bypass": float("inf"), "disabled": float("inf"),
            "enabled": float("inf")}
    profiler = KernelProfiler()
    for _ in range(repeats):
        set_bypass(True)
        try:
            best["bypass"] = min(best["bypass"], timed(solve))
        finally:
            set_bypass(False)
        best["disabled"] = min(best["disabled"], timed(solve))
        tracer = Tracer()
        with trace_scope(tracer), profile_scope(profiler, flush=False):
            best["enabled"] = min(best["enabled"], timed(solve))

    return {
        "positions": positions,
        "library_size": LIBRARY_SIZE,
        "backend": backend,
        "bypass_seconds": best["bypass"],
        "disabled_seconds": best["disabled"],
        "enabled_seconds": best["enabled"],
        "disabled_over_bypass": best["disabled"] / best["bypass"],
        "enabled_over_bypass": best["enabled"] / best["bypass"],
        "profiled": profiler.snapshot(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR10.json")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    report = measure(args.scale, args.repeats)
    payload = {
        "meta": {
            "generated_unix": int(time.time()),
            "scale": args.scale,
            "repeats": args.repeats,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "obs": report,
        "ci_gate": dict(CI_GATE),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"bench_obs: n={report['positions']} backend={report['backend']}  "
        f"bypass {report['bypass_seconds']*1e3:.2f}ms  "
        f"disabled {report['disabled_seconds']*1e3:.2f}ms "
        f"({report['disabled_over_bypass']:.4f}x)  "
        f"enabled {report['enabled_seconds']*1e3:.2f}ms "
        f"({report['enabled_over_bypass']:.2f}x)"
    )
    print(f"bench_obs: wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
