"""Ablation — destructive (paper-literal) vs non-destructive pruning.

DESIGN.md documents that the paper's pseudocode prunes the live list,
which is exact on 2-pin nets but a heuristic across branch merges.  This
benchmark quantifies both sides on the scaled Table 1 nets: the speed
gained by keeping only hull candidates, and the slack it risks.

Run: ``pytest benchmarks/bench_ablation_pruning.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from conftest import run_once, scaled

from repro.core.api import insert_buffers
from repro.experiments.workloads import TABLE1_NETS, build_net
from repro.library.generators import paper_library

SPEC = scaled(TABLE1_NETS[1])
LIBRARY_SIZE = 32


@pytest.mark.parametrize("mode", ["keep-all", "destructive"])
def test_pruning_mode_runtime(benchmark, mode):
    tree = build_net(SPEC)
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    benchmark.extra_info.update(mode=mode)
    run_once(
        benchmark,
        insert_buffers,
        tree,
        library,
        destructive_pruning=(mode == "destructive"),
    )


def test_pruning_mode_quality(benchmark):
    """Destructive pruning must never win, and any loss is reported."""
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)

    def compare():
        gaps = []
        for spec in TABLE1_NETS[:2]:
            tree = build_net(scaled(spec))
            exact = insert_buffers(tree, library)
            paper_mode = insert_buffers(tree, library, destructive_pruning=True)
            gaps.append((spec.name, exact.slack, paper_mode.slack))
        return gaps

    gaps = run_once(benchmark, compare)
    print()
    for name, exact, paper_mode in gaps:
        loss_ps = (exact - paper_mode) / 1e-12
        print(f"{name}: exact {exact/1e-12:.1f}ps, "
              f"paper-literal {paper_mode/1e-12:.1f}ps, loss {loss_ps:.3f}ps")
        assert paper_mode <= exact + 1e-16
