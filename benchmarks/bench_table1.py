"""Table 1 — runtimes on industrial-like nets across library sizes.

Paper: three industrial nets (m = 337 / 1944 / 2676 sinks) buffered with
libraries of 8, 16, 32 and 64 types; the new algorithm wins by up to
~11x at b = 64 and is roughly break-even at b = 8.  Here each (net, b,
algorithm) cell is one benchmark, and a closing check asserts the
qualitative claims on freshly measured numbers: equal optimal slacks,
speedup growing with b, and a clear win at b = 64.

Run: ``pytest benchmarks/bench_table1.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from conftest import run_once, scaled

from repro.core.api import insert_buffers
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.workloads import TABLE1_LIBRARY_SIZES, TABLE1_NETS, build_net
from repro.library.generators import paper_library

NETS = [scaled(spec) for spec in TABLE1_NETS]
IDS = [spec.name for spec in NETS]


@pytest.mark.parametrize("spec", NETS, ids=IDS)
@pytest.mark.parametrize("size", TABLE1_LIBRARY_SIZES)
@pytest.mark.parametrize("algorithm", ["lillis", "fast"])
def test_table1_cell(benchmark, spec, size, algorithm):
    tree = build_net(spec)
    library = paper_library(size, jitter=0.03, seed=size)
    benchmark.extra_info.update(
        net=spec.name, sinks=tree.num_sinks, positions=tree.num_buffer_positions,
        library_size=size,
    )
    result = run_once(benchmark, insert_buffers, tree, library,
                      algorithm=algorithm)
    assert result.slack == result.slack  # not NaN
    benchmark.extra_info["slack_ps"] = result.slack / 1e-12
    benchmark.extra_info["buffers"] = result.num_buffers


def test_table1_claims(benchmark):
    """Regenerate the whole table once and assert the paper's claims."""
    small = NETS[0]

    def build():
        return run_table1(nets=[small], library_sizes=TABLE1_LIBRARY_SIZES)

    rows = run_once(benchmark, build)
    print()
    print(format_table1(rows))

    by_b = {row.library_size: row for row in rows}
    # Claim 1 (checked inside run_table1 too): slacks equal - implicit.
    # Claim 2: speedup grows with library size.
    assert by_b[64].speedup > by_b[8].speedup
    # Claim 3: a clear win at b = 64.
    assert by_b[64].speedup > 1.3
    # Claim 4 (memory): candidate lists identical across algorithms.
    for row in rows:
        assert row.peak_list_lillis == row.peak_list_fast
