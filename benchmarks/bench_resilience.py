"""Chaos benchmark: availability under injected faults — ``BENCH_PR9.json``.

Replays a deterministic 100-request solve corpus through a supervised
:class:`~repro.core.batch.SolverPool` while the committed fault plan
kills and hangs pool workers underneath it (10% crash rate and 5%
two-second hangs at the ``worker.task`` site, seeded — see
:mod:`repro.resilience.faults`).  Every surviving answer is compared
bit-for-bit against the healthy in-process solve of the same net.

What the numbers mean:

* ``success_rate`` — the fraction of requests that returned a result at
  all (supervised retries, pool respawns and the in-process fallback
  are all legal ways to get there; an exception is a failure).
* ``bit_identical_fraction`` — of the successes, how many match the
  healthy reference exactly.  The resilience layer's contract is that
  degraded execution never changes bits, so anything below 1.0 is a
  correctness bug, not a tuning problem.
* ``latency`` — per-request wall-clock percentiles.  Fault handling
  costs time (a hang is only detected at ``task_timeout``); p99 shows
  the price of the worst recovery path.
* ``supervisor`` / ``breakers`` — what the recovery machinery actually
  did: retries, pool respawns, in-process fallbacks, breaker trips.

``ci_gate`` thresholds are embedded in the output and enforced by
``tools/perf_gate.py`` against a freshly generated file: at least
``min_success_rate`` of requests must succeed, and with
``require_bit_identical`` every success must match the healthy
reference bit-for-bit.

Run::

    PYTHONPATH=src python benchmarks/bench_resilience.py \\
        [--out BENCH_PR9.json] [--requests 100] [--scale 1.0] [--seed 2005]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.api import insert_buffers
from repro.core.batch import SolverPool
from repro.library.generators import paper_library
from repro.resilience import (
    FaultPlan,
    FaultRule,
    clear_fault_plan,
    install_fault_plan,
)
from repro.tree.builders import random_tree_net

LIBRARY_SIZE = 8

#: The committed chaos plan: every tenth worker task dies with
#: ``os._exit``, every twentieth sleeps for two seconds (longer than
#: the pool's task timeout, so it reads as a hung worker).
FAULT_RULES = (
    ("worker.task", "crash", 0.10, None),
    ("worker.task", "hang", 0.05, 2.0),
)

CI_GATE = {
    # At least 99 of 100 requests must come back with an answer even
    # while workers are being killed and hung underneath the pool ...
    "min_success_rate": 0.99,
    # ... and every answer must be bit-identical to the healthy solve:
    # degraded execution is allowed, degraded *results* are not.
    "require_bit_identical": True,
}


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(int(round(fraction * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[index]


def _corpus(requests: int, scale: float) -> List:
    """Deterministic request mix across the small-net size spectrum."""
    sizes = (4, 6, 8, 12, 16, 24)
    nets = []
    for index in range(requests):
        sinks = max(int(sizes[index % len(sizes)] * scale), 2)
        nets.append(random_tree_net(sinks, seed=100 + index))
    return nets


def _identical(result, reference) -> bool:
    return (
        result.slack == reference.slack
        and result.assignment == reference.assignment
        and result.driver_load == reference.driver_load
        and result.stats.root_candidates == reference.stats.root_candidates
        and result.stats.peak_list_length == reference.stats.peak_list_length
        and (result.stats.candidates_generated
             == reference.stats.candidates_generated)
    )


def collect(requests: int, scale: float, seed: int,
            task_timeout: float) -> Dict:
    library = paper_library(LIBRARY_SIZE, jitter=0.03, seed=LIBRARY_SIZE)
    nets = _corpus(requests, scale)
    references = [insert_buffers(net, library) for net in nets]

    plan = FaultPlan(
        [FaultRule(site, kind, rate=rate, seconds=seconds)
         for site, kind, rate, seconds in FAULT_RULES],
        seed=seed,
    )
    latencies: List[float] = []
    successes = 0
    identical = 0
    failures: List[str] = []
    install_fault_plan(plan, export_env=True)
    try:
        with SolverPool(
            library, jobs=2, task_timeout=task_timeout, max_retries=2,
        ) as pool:
            for net, reference in zip(nets, references):
                started = time.perf_counter()
                try:
                    result = pool.solve([net])[0]
                except Exception as exc:  # any escape counts against us
                    failures.append(f"{type(exc).__name__}: {exc}")
                else:
                    successes += 1
                    if _identical(result, reference):
                        identical += 1
                latencies.append(time.perf_counter() - started)
            supervisor = pool.supervisor.stats()
            resilience = pool.resilience_stats()
    finally:
        clear_fault_plan()

    return {
        "meta": {
            "bench": "PR9 resilience chaos run",
            "requests": requests,
            "scale": scale,
            "seed": seed,
            "task_timeout_seconds": task_timeout,
            "jobs": 2,
            "library_size": LIBRARY_SIZE,
            "python": sys.version.split()[0],
            "workload": (
                "deterministic small-net solve corpus pushed one request "
                "at a time through a supervised two-worker SolverPool "
                "while the seeded fault plan crashes and hangs workers "
                "at the worker.task site; every answer compared "
                "bit-for-bit against the healthy in-process solve"
            ),
        },
        "ci_gate": dict(CI_GATE),
        "resilience": {
            "fault_plan": plan.to_dict(),
            "requests": requests,
            "successes": successes,
            "success_rate": successes / requests if requests else 0.0,
            "bit_identical": identical,
            "bit_identical_fraction": (
                identical / successes if successes else 0.0
            ),
            "failures": failures,
            "latency": {
                "p50_seconds": _percentile(latencies, 0.50),
                "p99_seconds": _percentile(latencies, 0.99),
                "max_seconds": max(latencies),
                "total_seconds": sum(latencies),
            },
            "supervisor": supervisor,
            "breaker_trips": resilience["breakers"],
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Persist the PR9 resilience chaos run to JSON.")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_PR9.json",
        help="output path (default: BENCH_PR9.json at the repo root)")
    parser.add_argument(
        "--requests", type=int, default=100,
        help="chaos corpus size (default 100)")
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        help="net-size scale factor (default: $REPRO_BENCH_SCALE or 1.0)")
    parser.add_argument(
        "--seed", type=int, default=2005,
        help="fault-plan seed (default 2005)")
    parser.add_argument(
        "--task-timeout", type=float, default=0.75,
        help="pool per-dispatch timeout in seconds (default 0.75)")
    args = parser.parse_args(argv)

    payload = collect(args.requests, args.scale, args.seed,
                      args.task_timeout)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    report = payload["resilience"]
    print(f"chaos run: {report['successes']}/{report['requests']} ok "
          f"({report['success_rate']:.1%}), "
          f"{report['bit_identical']} bit-identical "
          f"({report['bit_identical_fraction']:.1%})")
    latency = report["latency"]
    print(f"  latency p50 {latency['p50_seconds']*1e3:8.1f}ms  "
          f"p99 {latency['p99_seconds']*1e3:8.1f}ms  "
          f"max {latency['max_seconds']*1e3:8.1f}ms")
    supervisor = report["supervisor"]
    print(f"  supervisor: {supervisor['retries']} retries, "
          f"{supervisor['respawns']} respawns, "
          f"{supervisor['fallbacks']} fallbacks")
    for failure in report["failures"]:
        print(f"  FAILURE: {failure}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.exit(main())
