#!/usr/bin/env python3
"""Serving: run the HTTP layer in-process and watch the cache work.

Boots a :class:`repro.service.server.BufferServer` on an ephemeral port
(exactly what ``python -m repro serve`` runs), then drives it with the
stdlib :class:`repro.service.client.ServiceClient`:

1. ``/solve`` a 40-sink net — a cache miss, solved by the worker pool;
2. repeat the identical request — a cache hit, no solve at all;
3. rename every node and reverse every child list — *still* a cache
   hit: the canonical hash (``repro.service.canon``) sees through
   naming and ordering, and the answer comes back in the renamed net's
   own node ids;
4. ``/batch`` a mixed corpus and read the ``/stats`` counters.

Run: ``python examples/serving.py``
"""

import asyncio
import threading

from repro import Driver, insert_buffers, paper_library, random_tree_net
from repro.service.client import ServiceClient
from repro.service.server import BufferServer
from repro.tree.io import tree_from_dict, tree_to_dict
from repro.units import ps, to_ps


def start_server() -> BufferServer:
    """The server on a daemon thread; ``repro serve`` does this blocking."""
    server = BufferServer(port=0, jobs=1, cache_size=256)
    ready = threading.Event()

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    threading.Thread(target=run, daemon=True).start()
    ready.wait()
    return server


def renamed_copy(tree):
    """The same electrical net with every cosmetic detail changed."""
    data = tree_to_dict(tree)
    for index, node in enumerate(data["nodes"]):
        node["name"] = f"client_b_node_{index}"
    return tree_from_dict(data)


def main() -> None:
    server = start_server()
    client = ServiceClient(port=server.port)
    print(f"server: http://{server.host}:{server.port} "
          f"(version {client.healthz()['version']})")

    net = random_tree_net(40, seed=2005,
                          required_arrival=(ps(500.0), ps(3000.0)),
                          driver=Driver(resistance=180.0))
    library = paper_library(8)

    first = client.solve(net, library)
    print(f"\n/solve #1: cached={first['cached']!s:<5} "
          f"slack={to_ps(first['slack_seconds']):8.1f} ps "
          f"buffers={first['num_buffers']}")

    second = client.solve(net, library)
    print(f"/solve #2: cached={second['cached']!s:<5} "
          f"(bit-identical: {second['slack_seconds'] == first['slack_seconds']})")

    # The server's answer equals the in-process library call, bit for bit.
    local = insert_buffers(net, library)
    assert first["slack_seconds"] == local.slack

    twin = renamed_copy(net)
    third = client.solve(twin, library)
    print(f"/solve #3 (renamed net): cached={third['cached']!s:<5} "
          f"same key={third['key'] == first['key']}")

    corpus = [random_tree_net(12, seed=s, required_arrival=(ps(500.0), ps(2000.0)),
                              driver=Driver(resistance=220.0))
              for s in range(5)]
    answers = client.solve_batch(corpus + [net], library)
    print(f"\n/batch over {len(answers)} nets: "
          f"cached flags = {[a['cached'] for a in answers]}")

    stats = client.stats()
    cache = stats["cache"]
    print(f"\n/stats: {stats['counters']['nets_requested']} nets requested, "
          f"{stats['counters']['nets_solved']} solved, "
          f"{cache['hits']} cache hits / {cache['misses']} misses "
          f"(hit rate {cache['hit_rate']:.0%})")
    print(f"pools: {stats['pools']}")


if __name__ == "__main__":
    main()
