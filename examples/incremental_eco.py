#!/usr/bin/env python3
"""Incremental ECO re-solve: edit a net, pay only for the dirty path.

The engineering-change-order loop is the dominant real use of buffer
insertion: a placed design is re-timed over and over as pins move,
wires re-route and drivers resize.  This example runs that loop two
ways:

1. **In-process** — an :class:`repro.incremental.IncrementalSolver`
   session over a 1000-position net: one full solve, then a sink edit,
   a wire re-route and a driver swap, each re-solved incrementally and
   cross-checked (bit-identical) against a from-scratch solve, with
   the measured speedup and the fraction of the schedule actually
   re-executed.
2. **Over HTTP** — the same net through the server's ``/session``
   endpoints (what ``python -m repro serve`` exposes), including a
   structural edit whose freshly created sink is addressed by the
   label the server handed back.

Run: ``python examples/incremental_eco.py``
"""

import asyncio
import threading
import time

from repro import Driver, insert_buffers, paper_library, random_tree_net
from repro.incremental import (
    AddSink,
    IncrementalSolver,
    SetSinkRAT,
    SetWire,
    SwapDriver,
)
from repro.service.client import ServiceClient
from repro.service.server import BufferServer
from repro.tree.segmenting import segment_to_position_count
from repro.units import ps, to_ps


def start_server() -> BufferServer:
    server = BufferServer(port=0, jobs=1)
    ready = threading.Event()

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    threading.Thread(target=run, daemon=True).start()
    ready.wait()
    return server


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def main() -> None:
    library = paper_library(16)
    tree = segment_to_position_count(
        random_tree_net(50, seed=7, required_arrival=(ps(500.0), ps(3000.0)),
                        driver=Driver(resistance=200.0)),
        1000,
    )

    # -- 1. in-process session -----------------------------------------
    solver = IncrementalSolver(tree, library)
    baseline, full_seconds = timed(solver.resolve)
    print(f"full solve: slack {to_ps(baseline.slack):8.1f} ps, "
          f"{baseline.num_buffers} buffers, {full_seconds * 1e3:6.1f} ms "
          f"(n={tree.num_buffer_positions}, backend={solver.backend})")

    sink = tree.sinks()[0]
    segment = tree.children_of(tree.root_id)[0]
    edge = tree.edge_to(segment)
    eco_moves = [
        ("tighten one sink's deadline",
         SetSinkRAT(node=sink.node_id,
                    required_arrival=sink.required_arrival * 0.8)),
        ("re-route a segment (detour: +40% RC)",
         SetWire(node=segment, resistance=edge.resistance * 1.4,
                 capacitance=edge.capacitance * 1.4)),
        ("resize the driver",
         SwapDriver(resistance=110.0)),
    ]
    for label, edit in eco_moves:
        solver.apply(edit)
        result, seconds = timed(solver.resolve)
        scratch, scratch_seconds = timed(
            lambda: insert_buffers(tree, library)
        )
        assert result.slack == scratch.slack  # bit-identical, always
        assert result.assignment == scratch.assignment
        print(f"  {label:<38} slack {to_ps(result.slack):8.1f} ps   "
              f"incremental {seconds * 1e3:6.2f} ms vs scratch "
              f"{scratch_seconds * 1e3:6.1f} ms "
              f"({scratch_seconds / seconds:5.1f}x, re-ran "
              f"{solver.last_executed_fraction:.0%} of the schedule)")

    # -- 2. the same loop over HTTP ------------------------------------
    server = start_server()
    client = ServiceClient(port=server.port)
    session = client.create_session(tree, library)
    print(f"\nHTTP session {session.session_id} on "
          f"http://{server.host}:{server.port}")
    session.resolve()  # server-side full solve, frontiers memoized

    answer = session.edit(
        SetSinkRAT(node=sink.node_id,
                   required_arrival=sink.required_arrival * 0.9),
    )
    updated = session.resolve()
    print(f"  sink edit over HTTP: slack "
          f"{to_ps(updated['slack_seconds']):8.1f} ps, re-ran "
          f"{updated['incremental']['executed_fraction']:.0%}, spliced "
          f"{updated['incremental']['spliced_subtrees']} cached subtrees")

    # A structural edit: the server answers with a label for the new
    # sink, usable in follow-up edits.
    answer = session.edit(AddSink(
        parent=segment, edge_resistance=2.0, edge_capacitance=2e-15,
        capacitance=1e-14, required_arrival=ps(1200.0),
    ))
    new_label = answer["created"][0]
    session.edit({"op": "set_sink_rat", "node": new_label,
                  "required_arrival": ps(900.0)})
    updated = session.resolve()
    print(f"  added sink {new_label!r}, re-timed it: slack "
          f"{to_ps(updated['slack_seconds']):8.1f} ps "
          f"({updated['num_buffers']} buffers)")

    stats = client.stats()["incremental"]
    print(f"  /stats: {stats['sessions']['live']} session(s), frontier "
          f"cache {stats['frontier_cache']['entries']} entries / "
          f"{stats['frontier_cache']['bytes'] / 1024:.0f} KiB, mean "
          f"re-run fraction {stats['mean_executed_fraction']:.0%}")
    session.delete()


if __name__ == "__main__":
    main()
