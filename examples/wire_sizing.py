#!/usr/bin/env python3
"""Simultaneous buffer insertion and wire sizing.

A resistive 15 mm line is optimized three ways: buffers only, wire
widths only, and jointly.  The joint dynamic program (Lillis-style,
with the DATE-2005 add-buffer speedup) beats both single-knob flows —
the classic argument for optimizing the two together.

Run: ``python examples/wire_sizing.py``
"""

from repro import Driver, RoutingTree, paper_library
from repro.units import fF, ps, to_ps
from repro.wiresizing import (
    default_wire_classes,
    size_wires_and_insert_buffers,
    verify_wire_sizing,
)

LENGTH = 15_000.0
SEGMENTS = 30


def build_line(insertable: bool) -> RoutingTree:
    """The 15 mm line, with or without legal buffer positions."""
    from repro.units import TSMC180_WIRE_CAP_PER_UM, TSMC180_WIRE_RES_PER_UM

    seg = LENGTH / SEGMENTS
    edge_r = TSMC180_WIRE_RES_PER_UM * seg
    edge_c = TSMC180_WIRE_CAP_PER_UM * seg
    net = RoutingTree.with_source(driver=Driver(resistance=150.0))
    parent = net.root_id
    for _ in range(SEGMENTS - 1):
        parent = net.add_internal(parent, edge_r, edge_c,
                                  buffer_position=insertable, length=seg)
    net.add_sink(parent, edge_r, edge_c, capacitance=fF(10.0),
                 required_arrival=ps(3000.0), length=seg)
    net.validate()
    return net


def main() -> None:
    library = paper_library(8)
    classes = default_wire_classes(4, max_width=4.0)
    min_width_only = default_wire_classes(1)

    buffers_only = size_wires_and_insert_buffers(
        build_line(insertable=True), library, min_width_only
    )
    wires_only = size_wires_and_insert_buffers(
        build_line(insertable=False), library, classes
    )
    net = build_line(insertable=True)
    joint = size_wires_and_insert_buffers(net, library, classes)

    print(f"buffers only : {to_ps(buffers_only.slack):8.1f} ps "
          f"({buffers_only.num_buffers} buffers, min-width wires)")
    print(f"wires only   : {to_ps(wires_only.slack):8.1f} ps "
          f"(0 buffers, widened wires)")
    print(f"joint        : {to_ps(joint.slack):8.1f} ps "
          f"({joint.num_buffers} buffers + widths)")

    widths = {}
    for wire_class in joint.wire_assignment.values():
        widths[wire_class.name] = widths.get(wire_class.name, 0) + 1
    print("\nwidth histogram: " + ", ".join(
        f"{name} x{count}" for name, count in sorted(widths.items())
    ))

    report = verify_wire_sizing(net, joint)
    assert abs(report.slack - joint.slack) < 1e-15
    print(f"independent verification: {to_ps(report.slack):.1f} ps")

    assert joint.slack >= buffers_only.slack - 1e-18
    assert joint.slack >= wires_only.slack - 1e-18
    print("\njoint optimization dominates both single-knob flows.")


if __name__ == "__main__":
    main()
