#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Produces, on the DESIGN.md-documented scaled workloads:

* Table 1 — runtimes and speedups for 3 nets x 4 library sizes;
* Figure 3 — normalized runtime versus library size b;
* Figure 4 — normalized runtime versus buffer positions n;
* the memory note (candidate-list peaks) and the small-b overhead note.

This script is the source of the measured numbers in EXPERIMENTS.md.

Run: ``python examples/reproduce_paper.py``           (~3-4 min)
     ``python examples/reproduce_paper.py --quick``   (~40 s, smaller grid)
"""

import sys

from repro.experiments import (
    FIG3_LIBRARY_SIZES,
    FIG4_POSITION_COUNTS,
    TABLE1_NETS,
    format_figure,
    format_table1,
    run_fig3,
    run_fig4,
    run_table1,
)


def main() -> None:
    quick = "--quick" in sys.argv
    table_sizes = (8, 16, 32) if quick else (8, 16, 32, 64)
    table_nets = TABLE1_NETS[:2] if quick else TABLE1_NETS
    fig3_sizes = (8, 16, 32) if quick else FIG3_LIBRARY_SIZES
    fig4_counts = FIG4_POSITION_COUNTS[:3] if quick else FIG4_POSITION_COUNTS

    print("=" * 72)
    print("Table 1: Lillis (O(b^2 n^2)) vs new algorithm (O(b n^2))")
    print("=" * 72)
    rows = run_table1(nets=table_nets, library_sizes=table_sizes)
    print(format_table1(rows))
    by_key = {(r.net, r.library_size): r for r in rows}
    biggest = table_nets[-1].name
    print(f"\nspeedup at b={table_sizes[-1]} on {biggest}: "
          f"{by_key[(biggest, table_sizes[-1])].speedup:.2f}x "
          f"(paper reports up to ~11x at its 10x-larger n)")
    peaks = {(r.peak_list_lillis, r.peak_list_fast) for r in rows}
    assert all(a == b for a, b in peaks), "candidate lists must match"
    print("memory note: identical candidate-list peaks for both algorithms "
          "(paper: ~2% list overhead)")

    print()
    print("=" * 72)
    print("Figure 3: normalized runtime vs library size b")
    print("=" * 72)
    fig3 = run_fig3(library_sizes=fig3_sizes)
    print(format_figure(fig3))
    small_b = fig3.points[0]
    print(f"\nsmall-b note (paper: 'a little time overhead ... due to "
          f"Convexpruning'): at b={small_b.x} fast/lillis = "
          f"{small_b.fast_seconds / small_b.lillis_seconds:.2f}")

    print()
    print("=" * 72)
    print("Figure 4: normalized runtime vs buffer positions n (b = 32)")
    print("=" * 72)
    fig4 = run_fig4(position_counts=fig4_counts)
    print(format_figure(fig4))
    first, last = fig4.points[0], fig4.points[-1]
    print(f"\nabsolute ratio lillis/fast grew from "
          f"{first.lillis_seconds / first.fast_seconds:.2f}x at n={first.x} "
          f"to {last.lillis_seconds / last.fast_seconds:.2f}x at n={last.x}")


if __name__ == "__main__":
    main()
