#!/usr/bin/env python3
"""Slack-versus-cost Pareto frontier (the paper's closing remark).

"Our algorithm can also be applied to reduce buffer cost" — this example
runs the cost-stratified extension on a mid-size net and prints the full
trade-off: how much slack each additional buffer buys, and the cheapest
buffering meeting a timing target.

Run: ``python examples/cost_tradeoff.py``
"""

from repro import Driver, paper_library, two_pin_net, unbuffered_slack
from repro.cost import minimize_cost, slack_cost_frontier
from repro.units import fF, ps, to_ps


def main() -> None:
    net = two_pin_net(
        length=12_000.0,
        sink_capacitance=fF(25.0),
        required_arrival=ps(1500.0),
        driver=Driver(resistance=250.0),
        num_segments=24,
    )
    library = paper_library(8)

    print(f"unbuffered slack: {to_ps(unbuffered_slack(net)):.1f} ps\n")
    frontier = slack_cost_frontier(net, library)

    print(f"{'buffers':>8}{'slack (ps)':>12}{'gain (ps)':>11}  types used")
    previous = None
    for point in frontier:
        gain = "" if previous is None else f"{to_ps(point.slack - previous):.1f}"
        types = sorted({b.name for b in point.assignment.values()})
        print(f"{point.cost:>8}{to_ps(point.slack):>12.1f}{gain:>11}  "
              f"{', '.join(types) if types else '-'}")
        previous = point.slack

    # Diminishing returns: the first buffer buys far more than the last.
    if len(frontier) >= 3:
        first_gain = frontier[1].slack - frontier[0].slack
        last_gain = frontier[-1].slack - frontier[-2].slack
        print(f"\nfirst buffer buys {to_ps(first_gain):.1f} ps, "
              f"last buys {to_ps(last_gain):.1f} ps")

    target = frontier[0].slack + 0.8 * (frontier[-1].slack - frontier[0].slack)
    cheapest = minimize_cost(net, library, slack_target=target)
    print(f"\ncheapest buffering reaching {to_ps(target):.1f} ps: "
          f"{cheapest.cost} buffer(s), slack {to_ps(cheapest.slack):.1f} ps")


if __name__ == "__main__":
    main()
