#!/usr/bin/env python3
"""Quickstart: buffer a long wire and inspect the result.

A 8 mm point-to-point wire in the paper's TSMC 180 nm parameters misses
its 900 ps required arrival time; optimal buffer insertion with a
16-type library recovers it.  This is the smallest end-to-end use of the
public API:

    build net -> build library -> insert_buffers -> verify

Run: ``python examples/quickstart.py``
"""

from repro import Driver, insert_buffers, paper_library, two_pin_net, unbuffered_slack
from repro.units import fF, ps, to_ps


def main() -> None:
    net = two_pin_net(
        length=8000.0,                 # micrometres
        sink_capacitance=fF(20.0),
        required_arrival=ps(900.0),
        driver=Driver(resistance=180.0),
        num_segments=32,               # 31 candidate buffer positions
    )
    library = paper_library(16)

    print(f"net: {net}")
    print(f"library: {library.size} buffer types, "
          f"R in {library.resistance_range()[0]:.0f}.."
          f"{library.resistance_range()[1]:.0f} ohm")
    print(f"unbuffered slack: {to_ps(unbuffered_slack(net)):8.1f} ps")

    result = insert_buffers(net, library)          # the O(bn^2) algorithm
    print(f"buffered slack:   {to_ps(result.slack):8.1f} ps "
          f"({result.num_buffers} buffers)")

    print("\ninserted buffers (node -> type):")
    for node_id in sorted(result.assignment):
        buffer = result.assignment[node_id]
        print(f"  node {node_id:>3} -> {buffer}")

    # Re-measure the assignment with the independent timing analysis.
    report = result.verify(net)
    print(f"\nindependent verification: slack = {to_ps(report.slack):.1f} ps, "
          f"critical sink = node {report.critical_sink}")
    assert abs(report.slack - result.slack) < 1e-15


if __name__ == "__main__":
    main()
