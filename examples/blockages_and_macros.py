#!/usr/bin/env python3
"""Buffer insertion around macros (restricted buffer locations).

Zhou et al. (paper reference [15]) study insertion when parts of the die
are covered by macros: wires route over them, buffers cannot land on
them.  This example floorplans a large SRAM in the middle of a net,
removes the covered positions, and compares the optimum with and
without the blockage — then shows the slack map locating where the
restriction hurts.

Run: ``python examples/blockages_and_macros.py``
"""

from repro import Driver, insert_buffers, paper_library, segment_tree, random_tree_net
from repro.timing.slack_map import compute_slack_map
from repro.tree.blockages import Blockage, apply_blockages, blockage_coverage
from repro.units import ps, to_ps


def main() -> None:
    base = random_tree_net(
        24, seed=77, die_size=10_000.0,
        required_arrival=(ps(800.0), ps(2000.0)),
        driver=Driver(resistance=220.0),
    )
    net = segment_tree(base, 250.0)
    sram = Blockage(2500.0, 2500.0, 7500.0, 7500.0, name="sram_macro")

    restricted, removed = apply_blockages(net, [sram])
    coverage = blockage_coverage(net, [sram])
    print(f"net: m={net.num_sinks}, n={net.num_buffer_positions}")
    print(f"macro covers {coverage:.0%} of buffer positions "
          f"({removed} removed)\n")

    library = paper_library(8)
    free = insert_buffers(net, library)
    blocked = insert_buffers(restricted, library)

    print(f"optimal slack, open die:    {to_ps(free.slack):9.1f} ps "
          f"({free.num_buffers} buffers)")
    print(f"optimal slack, with macro:  {to_ps(blocked.slack):9.1f} ps "
          f"({blocked.num_buffers} buffers)")
    print(f"slack cost of the macro:    {to_ps(free.slack - blocked.slack):9.1f} ps")

    for node_id in blocked.assignment:
        position = restricted.node(node_id).position
        assert position is None or not sram.contains(position)
    print("\nno buffer placed inside the macro (checked)")

    slack_map = compute_slack_map(restricted, blocked.assignment)
    path = slack_map.critical_path(restricted)
    inside = sum(
        1 for node_id in path
        if restricted.node(node_id).position is not None
        and sram.contains(restricted.node(node_id).position)
    )
    print(f"critical path: {len(path)} nodes, {inside} of them over the "
          f"macro (the unbufferable stretch)")


if __name__ == "__main__":
    main()
