#!/usr/bin/env python3
"""Figure-3 style sweep: runtime versus buffer-library size.

Modern libraries carry hundreds of buffers; the paper's motivation is
that the classic algorithm's quadratic dependence on b makes full
libraries unusable.  This example sweeps b on one net and renders the
normalized runtime curves as ASCII, mirroring Figure 3.

Run: ``python examples/library_size_sweep.py`` (~30 s)
"""

from repro.experiments import FIGURE_NET, format_figure, run_fig3


def ascii_chart(series, width=50):
    """Bars of normalized runtime, both algorithms, per library size."""
    top = max(p.lillis_normalized for p in series.points)
    lines = []
    for point in series.points:
        for label, value in (("lillis", point.lillis_normalized),
                             ("fast  ", point.fast_normalized)):
            bar = "#" * max(1, round(width * value / top))
            lines.append(f"b={point.x:>3} {label} |{bar} {value:.2f}")
        lines.append("")
    return "\n".join(lines)


def main() -> None:
    spec = FIGURE_NET
    series = run_fig3(spec=spec)
    print(format_figure(series))
    print()
    print(ascii_chart(series))

    lillis_slope, fast_slope = series.slopes()
    print(f"normalized slope ratio (lillis / fast): "
          f"{lillis_slope / fast_slope:.1f}x  "
          f"(paper: both linear in b, the new algorithm far flatter)")


if __name__ == "__main__":
    main()
