#!/usr/bin/env python3
"""Repeater insertion on a long line versus the closed-form optimum.

For a uniform line with wire resistance/capacitance per unit length
``r, c`` driven through identical repeaters ``(R_b, C_b, K_b)``, the
classic closed-form result (Bakoglu) gives the optimal repeater count

    k* ~ L * sqrt(r c / (2 (R_b C_b + ... ))) ~ L / l_opt,
    l_opt = sqrt(2 R_b (C_b + ...) / (r c))   (simplified form below)

The dynamic program knows nothing about this formula — it just searches
the discrete positions — yet its chosen repeater count and the resulting
delay land right on the analytic optimum.  A nice cross-validation of
the whole stack.

Run: ``python examples/repeater_line.py``
"""

import math

from repro import BufferType, Driver, insert_buffers_van_ginneken, two_pin_net
from repro.timing.elmore import elmore_delays
from repro.units import (
    TSMC180_WIRE_CAP_PER_UM,
    TSMC180_WIRE_RES_PER_UM,
    fF,
    ps,
    to_ps,
)


def analytic_optimal_stages(length, repeater):
    """Bakoglu's optimal number of stages for a repeated uniform line.

    Minimizing ``k*(K_b + R_b*(C_wire/k + C_b)) + (r*c*L^2)/(2k)`` over
    the stage count k (each stage: one repeater driving wire of length
    L/k) gives ``k* = L * sqrt(r*c / (2*(K_b + R_b*C_b)))`` — the
    textbook square-root form with the intrinsic delay folded in.
    """
    r = TSMC180_WIRE_RES_PER_UM
    c = TSMC180_WIRE_CAP_PER_UM
    per_stage = repeater.intrinsic_delay + (
        repeater.driving_resistance * repeater.input_capacitance
    )
    return length * math.sqrt(r * c / (2.0 * per_stage))


def main() -> None:
    length = 40_000.0  # 40 mm: definitely needs repeaters
    repeater = BufferType(
        "REP", driving_resistance=150.0, input_capacitance=fF(12.0),
        intrinsic_delay=ps(32.0),
    )
    net = two_pin_net(
        length=length,
        sink_capacitance=fF(12.0),
        required_arrival=0.0,         # minimize delay = maximize slack
        driver=Driver(resistance=150.0, intrinsic_delay=ps(32.0)),
        num_segments=200,
    )

    unbuffered_delay = max(elmore_delays(net).values())
    result = insert_buffers_van_ginneken(net, repeater)
    buffered_delay = -result.slack    # rat = 0, so delay = -slack

    k_analytic = analytic_optimal_stages(length, repeater)
    k_dp = result.num_buffers + 1     # stages = repeaters + driver

    print(f"line length:        {length/1000:.0f} mm")
    print(f"unbuffered delay:   {to_ps(unbuffered_delay):10.1f} ps")
    print(f"repeated delay:     {to_ps(buffered_delay):10.1f} ps "
          f"({unbuffered_delay / buffered_delay:.1f}x faster)")
    print(f"stages chosen by DP:       {k_dp}")
    print(f"analytic optimal stages:   {k_analytic:.1f}")

    positions = sorted(result.assignment)
    gaps = [b - a for a, b in zip(positions, positions[1:])]
    if gaps:
        print(f"repeater spacing (in segments): min {min(gaps)}, "
              f"max {max(gaps)} (uniform line -> even spacing)")

    if abs(k_dp - k_analytic) > 0.35 * k_analytic:
        raise SystemExit("DP and analytic stage counts diverged!")
    print("\nDP agrees with the closed-form repeater optimum.")


if __name__ == "__main__":
    main()
