#!/usr/bin/env python3
"""Industrial-like multi-pin net: the two algorithms head to head.

Builds the scaled m = 194 net from the experiment harness (a stand-in
for the paper's 1944-sink industrial case), buffers it with libraries of
8..64 types using both the O(b^2 n^2) baseline and the O(b n^2)
algorithm, and prints the Table-1-style comparison: identical optimal
slacks, very different runtimes.

Run: ``python examples/industrial_net.py`` (~30 s)
"""

from repro.experiments import TABLE1_NETS, build_net, format_table1, run_table1


def main() -> None:
    spec = TABLE1_NETS[1]  # scaled stand-in for the m = 1944 net
    tree = build_net(spec)
    print(f"net {spec.name}: m = {tree.num_sinks} sinks, "
          f"n = {tree.num_buffer_positions} buffer positions "
          f"(paper: m = {spec.paper_sinks}, n = 33133)")
    print()

    rows = run_table1(nets=[spec], library_sizes=(8, 16, 32, 64))
    print(format_table1(rows))
    print()

    worst = max(rows, key=lambda r: r.library_size)
    print(f"at b = {worst.library_size}: the O(bn^2) algorithm is "
          f"{worst.speedup:.1f}x faster, and both algorithms agree on the "
          f"optimal slack ({worst.slack_ps:.1f} ps) and use "
          f"{worst.num_buffers} buffers.")


if __name__ == "__main__":
    main()
