#!/usr/bin/env python3
"""Polarity-aware buffering with an inverter-heavy library.

Real cell libraries are mostly inverters, and real nets have sinks that
want the inverted phase.  This example builds a net whose sinks require
mixed polarities, solves it with the polarity-aware DP (the DATE-2005
hull walk applied per polarity list), and shows:

* the plain algorithm cannot even express the problem,
* the polarity DP delivers every sink the right phase,
* inverters also *win on delay* (an inverter is one stage, a buffer two).

Run: ``python examples/inverters_and_polarity.py``
"""

from repro import (
    Driver,
    RoutingTree,
    evaluate_slack,
    insert_buffers_with_inverters,
    mixed_paper_library,
    verify_polarities,
)
from repro.units import fF, ps, to_ps


def build_net() -> RoutingTree:
    """A bus splitter: one trunk, four taps, alternating phases."""
    net = RoutingTree.with_source(driver=Driver(resistance=220.0))
    trunk = net.root_id
    for i in range(4):
        trunk = net.add_internal(trunk, 160.0, fF(40.0), name=f"trunk{i}")
        leg = net.add_internal(trunk, 60.0, fF(15.0), name=f"leg{i}")
        net.add_sink(
            leg, 40.0, fF(10.0),
            capacitance=fF(12.0),
            required_arrival=ps(1200.0),
            polarity=1 if i % 2 == 0 else -1,
            name=f"tap{i}{'+' if i % 2 == 0 else '-'}",
        )
    net.validate()
    return net


def main() -> None:
    net = build_net()
    library = mixed_paper_library(12, inverter_fraction=0.5)
    inverters = sum(1 for b in library if b.inverting)
    print(f"library: {library.size} cells ({inverters} inverters)")
    negative = [s.name for s in net.sinks() if s.polarity == -1]
    print(f"sinks needing the inverted phase: {', '.join(negative)}\n")

    result = insert_buffers_with_inverters(net, library)
    print(f"optimal slack: {to_ps(result.slack):.1f} ps with "
          f"{result.num_buffers} cells:")
    for node_id in sorted(result.assignment):
        cell = result.assignment[node_id]
        kind = "inverter" if cell.inverting else "buffer"
        print(f"  {net.node(node_id).name:<8} <- {cell.name} ({kind})")

    assert verify_polarities(net, result.assignment)
    measured = evaluate_slack(net, result.assignment)
    assert abs(measured - result.slack) < 1e-15
    print("\npolarity check: every sink receives its required phase")
    print(f"independent timing check: {to_ps(measured):.1f} ps")


if __name__ == "__main__":
    main()
