"""Wire-segmenting tests: buffer positions appear, electricals preserved."""

import pytest

from repro import (
    Driver,
    elmore_delays,
    random_tree_net,
    segment_tree,
    two_pin_net,
)
from repro.errors import TreeError
from repro.tree.segmenting import (
    max_segment_length_for_positions,
    segment_to_position_count,
)
from repro.units import fF, ps


@pytest.fixture
def net():
    return random_tree_net(
        12, seed=9, required_arrival=ps(500.0), driver=Driver(200.0)
    )


def test_segmenting_increases_positions(net):
    segmented = segment_tree(net, 100.0)
    assert segmented.num_buffer_positions > net.num_buffer_positions


def test_segmenting_preserves_sink_count_and_data(net):
    segmented = segment_tree(net, 100.0)
    assert segmented.num_sinks == net.num_sinks
    original = sorted((s.capacitance, s.required_arrival) for s in net.sinks())
    copied = sorted((s.capacitance, s.required_arrival) for s in segmented.sinks())
    assert original == copied


def test_segmenting_preserves_total_parasitics(net):
    segmented = segment_tree(net, 50.0)
    assert segmented.total_wire_capacitance() == pytest.approx(
        net.total_wire_capacitance()
    )
    assert segmented.total_wire_length() == pytest.approx(net.total_wire_length())


def test_segmenting_preserves_unbuffered_elmore_delays(net):
    """Equal pi-segmentation leaves the Elmore delay exactly unchanged.

    For a wire (R, C) split into k equal pi-segments the summed delay
    telescopes back to ``R*C/2 + R*C_down`` — so segmenting must be
    timing-neutral for the unbuffered net.
    """
    base = {s.name: d for s, d in zip(net.sinks(), elmore_delays(net).values())}
    segmented = segment_tree(net, 25.0)
    seg = {s.name: d for s, d in zip(segmented.sinks(), elmore_delays(segmented).values())}
    for name, delay in base.items():
        assert seg[name] == pytest.approx(delay, rel=1e-9)


def test_infinite_length_is_a_copy(net):
    copy = segment_tree(net, float("inf"))
    assert copy.num_nodes == net.num_nodes
    assert copy.num_buffer_positions == net.num_buffer_positions


def test_zero_length_edges_never_split():
    tree = two_pin_net(length=100.0, num_segments=1)
    # Edge length metadata is 100; segmenting at 10 splits into 10.
    segmented = segment_tree(tree, 10.0)
    assert segmented.num_buffer_positions == 9


def test_rejects_non_positive_length(net):
    with pytest.raises(TreeError):
        segment_tree(net, 0.0)


def test_buffer_positions_flag_false_makes_steiner_points(net):
    segmented = segment_tree(net, 100.0, buffer_positions=False)
    assert segmented.num_buffer_positions == net.num_buffer_positions


def test_max_segment_length_estimate(net):
    length = max_segment_length_for_positions(net, 200)
    segmented = segment_tree(net, length)
    # The estimate is within a factor ~2 by construction.
    assert 100 <= segmented.num_buffer_positions <= 400


def test_segment_to_position_count_hits_tolerance(net):
    segmented = segment_to_position_count(net, 300, tolerance=0.05)
    assert abs(segmented.num_buffer_positions - 300) <= 0.10 * 300


def test_max_segment_length_validation(net):
    with pytest.raises(TreeError):
        max_segment_length_for_positions(net, 0)


def _tree_without_length_metadata():
    from repro import RoutingTree

    tree = RoutingTree.with_source()
    tree.add_sink(0, 5.0, fF(2.0), capacitance=fF(1.0), required_arrival=0.0)
    return tree


def test_segmenting_requires_length_metadata():
    with pytest.raises(TreeError):
        max_segment_length_for_positions(_tree_without_length_metadata(), 10)


def test_driver_preserved(net):
    assert segment_tree(net, 100.0).driver.resistance == 200.0


def test_segmenting_interpolates_positions():
    """New intermediate vertices get straight-line placements so
    geometric post-processing (blockages) still applies."""
    from repro import RoutingTree

    tree = RoutingTree.with_source()
    v = tree.add_internal(0, 1.0, fF(10.0), length=0.0, position=(0.0, 0.0))
    tree.add_sink(v, 10.0, fF(10.0), capacitance=fF(5.0), required_arrival=0.0,
                  length=1000.0, position=(1000.0, 0.0))
    segmented = segment_tree(tree, 250.0)
    placed = [n.position for n in segmented.buffer_positions()
              if n.position is not None]
    xs = sorted(p[0] for p in placed)
    # v itself sits at x = 0; the three new vertices interpolate evenly.
    assert xs == pytest.approx([0.0, 250.0, 500.0, 750.0])


def test_segmenting_leaves_position_none_without_endpoints():
    from repro import RoutingTree

    tree = RoutingTree.with_source()
    tree.add_sink(0, 10.0, fF(10.0), capacitance=fF(5.0), required_arrival=0.0,
                  length=1000.0)  # no positions anywhere
    segmented = segment_tree(tree, 250.0)
    assert all(n.position is None for n in segmented.buffer_positions())
