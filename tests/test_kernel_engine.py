"""The zero-object SoA kernel engine: parity, provenance tape, cutoffs.

The acceptance bar for the vectorized backend is *bit identity* with
the object backend — exact (``==``) root slack, driver load **and**
buffer assignment — across algorithms, drivers, load-capped libraries
and polarity cases, plus loud failure (never aliasing) when provenance
outlives its solve.
"""

import random

import pytest

from helpers import random_small_tree

from repro import (
    BufferLibrary,
    BufferType,
    Driver,
    insert_buffers,
    paper_library,
    two_pin_net,
    uniform_random_library,
)
from repro.core.polarity import insert_buffers_with_inverters, verify_polarities
from repro.core.schedule import compile_net
from repro.errors import AlgorithmError, InfeasibleError
from repro.library.generators import mixed_paper_library
from repro.units import fF, ps

numpy = pytest.importorskip("numpy")


def assert_identical(a, b):
    assert a.slack == b.slack  # exact: same bits
    assert a.driver_load == b.driver_load
    assert a.assignment == b.assignment
    assert a.stats.root_candidates == b.stats.root_candidates
    assert a.stats.peak_list_length == b.stats.peak_list_length
    assert a.stats.candidates_generated == b.stats.candidates_generated


DRIVERS = (None, Driver(140.0), Driver(2500.0))


def _library_for(seed: int, algorithm: str) -> BufferLibrary:
    if algorithm == "van_ginneken":
        return uniform_random_library(1, seed=seed)
    if seed % 3 == 0:
        # Every third case carries load caps, exercising the capped
        # prefix-scan path inside the fused BUFFER kernel.
        base = uniform_random_library(5, seed=seed)
        capped = [
            BufferType(
                name=f"{b.name}_capped",
                driving_resistance=b.driving_resistance,
                input_capacitance=b.input_capacitance,
                intrinsic_delay=b.intrinsic_delay,
                max_load=fF(40.0 + 12.0 * i),
            )
            for i, b in enumerate(base.buffers[:2])
        ]
        return BufferLibrary(list(base.buffers) + capped)
    return uniform_random_library(6, seed=seed)


# ----------------------------------------------------------------------
# Randomized parity corpus: algorithms x drivers x backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["fast", "lillis", "van_ginneken"])
@pytest.mark.parametrize("seed", range(12))
def test_parity_corpus(algorithm, seed):
    tree = random_small_tree(seed)
    library = _library_for(seed + 500, algorithm)
    driver = DRIVERS[seed % len(DRIVERS)]
    obj = insert_buffers(tree, library, algorithm=algorithm,
                         driver=driver, backend="object")
    soa = insert_buffers(tree, library, algorithm=algorithm,
                         driver=driver, backend="soa")
    assert_identical(obj, soa)


@pytest.mark.parametrize("seed", range(6))
def test_parity_corpus_compiled(seed):
    """The same bar through the compiled schedule interpreter."""
    tree = random_small_tree(seed + 40)
    library = _library_for(seed + 900, "fast")
    compiled = compile_net(tree, library)
    obj = insert_buffers(compiled, library, backend="object")
    soa = insert_buffers(compiled, library, backend="soa")
    assert_identical(obj, soa)


@pytest.mark.parametrize("destructive", [False, True])
def test_parity_destructive_long_trunk(destructive):
    """The fused kernel's destructive mode on a long 2-pin chain."""
    tree = two_pin_net(length=20000.0, sink_capacitance=fF(25.0),
                       required_arrival=ps(1200.0), driver=Driver(180.0),
                       num_segments=160)
    library = paper_library(16, jitter=0.03, seed=16)
    obj = insert_buffers(tree, library, destructive_pruning=destructive,
                         backend="object")
    soa = insert_buffers(tree, library, destructive_pruning=destructive,
                         backend="soa")
    assert_identical(obj, soa)


# ----------------------------------------------------------------------
# Polarity cases
# ----------------------------------------------------------------------


def _polarized_tree(seed: int):
    tree = random_small_tree(seed)
    rng = random.Random(seed * 13 + 1)
    flipped = 0
    for sink in tree.sinks():
        if rng.random() < 0.5:
            sink.polarity = -1
            flipped += 1
    return tree, flipped


@pytest.mark.parametrize("algorithm", ["fast", "lillis"])
@pytest.mark.parametrize("seed", range(10))
def test_polarity_parity(algorithm, seed):
    tree, _ = _polarized_tree(seed)
    library = mixed_paper_library(6, seed=seed + 7)
    obj = insert_buffers_with_inverters(tree, library, algorithm=algorithm,
                                        backend="object")
    soa = insert_buffers_with_inverters(tree, library, algorithm=algorithm,
                                        backend="soa")
    assert_identical(obj, soa)
    assert verify_polarities(tree, soa.assignment)
    assert soa.stats.backend == "soa"
    assert obj.stats.backend == "object"


def test_polarity_auto_backend_resolves():
    tree, _ = _polarized_tree(3)
    library = mixed_paper_library(4, seed=11)
    result = insert_buffers_with_inverters(tree, library, backend="auto")
    assert result.stats.backend == "soa"  # numpy present in this suite


def test_polarity_infeasible_is_backend_independent():
    tree = random_small_tree(5)
    for sink in tree.sinks():
        sink.polarity = -1
    library = paper_library(4)  # no inverters at all
    for backend in ("object", "soa"):
        with pytest.raises(InfeasibleError):
            insert_buffers_with_inverters(tree, library, backend=backend)


# ----------------------------------------------------------------------
# Deferred provenance: tape recycling and stale references
# ----------------------------------------------------------------------


def test_factory_recycling_no_tape_aliasing():
    """Two solves back-to-back on one factory must not alias tapes."""
    library = uniform_random_library(5, seed=77)
    tree_a = random_small_tree(21)
    tree_b = random_small_tree(22)
    compiled_a = compile_net(tree_a, library)
    compiled_b = compile_net(tree_b, library)

    # Fresh-factory references.
    fresh_a = insert_buffers(tree_a, library, backend="soa")
    fresh_b = insert_buffers(tree_b, library, backend="soa")

    # Interleaved solves through the warm per-net factories.
    first_a = insert_buffers(compiled_a, library, backend="soa")
    first_b = insert_buffers(compiled_b, library, backend="soa")
    second_a = insert_buffers(compiled_a, library, backend="soa")
    second_b = insert_buffers(compiled_b, library, backend="soa")
    assert_identical(fresh_a, first_a)
    assert_identical(fresh_b, first_b)
    assert_identical(first_a, second_a)
    assert_identical(first_b, second_b)


def test_stale_tape_ref_fails_loudly():
    from repro.core.stores.soa import SoAStoreFactory

    factory = SoAStoreFactory()
    factory.begin_solve()
    store = factory.sink(7, 1.0e-9, 2.0e-14)
    best = store.best_for_driver(100.0)
    assignment = {}
    best.decision.expand(assignment, [])  # live: fine
    assert assignment == {}  # a bare sink places no buffers

    factory.begin_solve()  # rewinds the tape, invalidates the ref
    with pytest.raises(AlgorithmError, match="stale provenance"):
        best.decision.expand({}, [])


def test_end_solve_invalidates_refs():
    from repro.core.stores.soa import SoAStoreFactory

    factory = SoAStoreFactory()
    factory.begin_solve()
    store = factory.sink(3, 1.0e-9, 2.0e-14)
    best = store.best_for_driver(50.0)
    factory.end_solve()
    with pytest.raises(AlgorithmError, match="stale provenance"):
        best.decision.expand({}, [])


def test_tape_records_survive_within_solve():
    """Buffer records expand into the exact plan node/type."""
    tree = random_small_tree(9)
    library = uniform_random_library(4, seed=90)
    result = insert_buffers(tree, library, backend="soa")
    # Every assigned buffer must be a library member at a tree node.
    for node_id, buffer in result.assignment.items():
        assert buffer in library.buffers
        assert tree.node(node_id).is_buffer_position


# ----------------------------------------------------------------------
# Cutoff invariance and kernel health
# ----------------------------------------------------------------------


def test_kernel_cutoff_invariance():
    """The scalar/vector crossover may never change any result."""
    from repro.core.stores.soa import kernel_cutoff, set_kernel_cutoff

    tree = two_pin_net(length=12000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(900.0), driver=Driver(200.0),
                       num_segments=96)
    library = paper_library(8)
    default = kernel_cutoff()
    results = []
    try:
        for cutoff in (0, 1, 16, 10_000_000):
            set_kernel_cutoff(cutoff)
            results.append(insert_buffers(tree, library, backend="soa"))
    finally:
        set_kernel_cutoff(default)
    for other in results[1:]:
        assert_identical(results[0], other)


def test_fused_apply_buffer_matches_composed_default():
    """SoA's fused kernel equals the protocol's composed default."""
    from repro.core.dp import build_plans
    from repro.core.stores.base import CandidateStore
    from repro.core.stores.soa import SoAStoreFactory

    tree = two_pin_net(length=6000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(700.0), driver=Driver(220.0),
                       num_segments=24)
    library = paper_library(6)
    plans = build_plans(tree, library)
    plan = next(iter(plans.values()))

    def build_store(factory):
        store = factory.sink(1, ps(700.0), fF(20.0))
        store = store.add_wire(30.0, fF(4.0))
        new = store.generate_scan(plan)
        store = store.insert(new)
        return store.add_wire(45.0, fF(6.0))

    fa = SoAStoreFactory()
    fa.begin_solve()
    fused = build_store(fa).apply_buffer(plan, generator="hull")

    fb = SoAStoreFactory()
    fb.begin_solve()
    composed = CandidateStore.apply_buffer(build_store(fb), plan,
                                           generator="hull")
    assert fused.q.tolist() == composed.q.tolist()
    assert fused.c.tolist() == composed.c.tolist()


def test_factory_stats_shape():
    from repro.core.stores.soa import SoAStoreFactory

    library = uniform_random_library(4, seed=31)
    tree = random_small_tree(31)
    compiled = compile_net(tree, library)
    insert_buffers(compiled, library, backend="soa")
    insert_buffers(compiled, library, backend="soa")
    stats = compiled.factory_stats()
    assert "soa" in stats
    soa_stats = stats["soa"]
    assert soa_stats["solves"] == 2
    assert soa_stats["arena"]["pooled_bytes"] >= 0
    assert soa_stats["tape"]["generation"] >= 2
    # The object backend bypasses store factories entirely (the engine
    # operates on bare lists), so it never appears here.
    insert_buffers(compiled, library, backend="object")
    assert "object" not in compiled.factory_stats()
    # The factory type itself reports through the protocol hook.
    assert isinstance(SoAStoreFactory().stats(), dict)
