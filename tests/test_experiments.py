"""Experiment-harness tests (tiny scales so the suite stays quick)."""

import pytest

from repro.experiments import (
    FIG3_LIBRARY_SIZES,
    FIG4_POSITION_COUNTS,
    TABLE1_LIBRARY_SIZES,
    TABLE1_NETS,
    NetSpec,
    build_net,
    format_figure,
    format_table1,
    run_fig3,
    run_fig4,
    run_table1,
    time_algorithm,
)
from repro.library.generators import paper_library

TINY = NetSpec(name="tiny", paper_sinks=337, sinks=8, target_positions=60)


def test_specs_mirror_paper():
    assert [s.paper_sinks for s in TABLE1_NETS] == [337, 1944, 2676]
    assert TABLE1_LIBRARY_SIZES == (8, 16, 32, 64)
    assert 8 in FIG3_LIBRARY_SIZES and 64 in FIG3_LIBRARY_SIZES
    assert len(FIG4_POSITION_COUNTS) >= 4


def test_build_net_deterministic_and_close_to_target():
    a = build_net(TINY)
    b = build_net(TINY)
    assert a is b  # cached
    assert a.num_sinks == 8
    assert abs(a.num_buffer_positions - 60) <= 12


def test_spec_scale():
    scaled = TINY.scale(2.0)
    assert scaled.target_positions == 120
    assert scaled.sinks == TINY.sinks


def test_time_algorithm_repeats_validation():
    tree = build_net(TINY)
    with pytest.raises(ValueError):
        time_algorithm(tree, paper_library(2), "fast", repeats=0)


def test_time_algorithm_measures(line_net=None):
    tree = build_net(TINY)
    run = time_algorithm(tree, paper_library(2), "fast", repeats=2)
    assert run.seconds > 0.0
    assert run.num_positions == tree.num_buffer_positions
    assert run.library_size == 2


def test_run_table1_rows_and_format():
    rows = run_table1(nets=[TINY], library_sizes=(2, 4))
    assert len(rows) == 2
    assert rows[0].net == "tiny"
    assert rows[0].speedup > 0.0
    text = format_table1(rows)
    assert "tiny" in text and "speedup" in text


def test_run_fig3_series_and_format():
    series = run_fig3(spec=TINY, library_sizes=(2, 4, 8))
    assert [p.x for p in series.points] == [2, 4, 8]
    assert series.points[0].lillis_normalized == pytest.approx(1.0)
    assert series.points[0].fast_normalized == pytest.approx(1.0)
    text = format_figure(series)
    assert "Figure 3" in text and "slope" in text


def test_run_fig4_series():
    series = run_fig4(spec=TINY, position_counts=(30, 60), library_size=2)
    xs = [p.x for p in series.points]
    assert xs == sorted(xs)
    assert series.parameter == "n"


def test_slopes_computable():
    series = run_fig3(spec=TINY, library_sizes=(2, 4, 8))
    lillis_slope, fast_slope = series.slopes()
    assert lillis_slope == pytest.approx(lillis_slope)  # not NaN
