"""Exception-hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "TreeError",
        "TreeStructureError",
        "NodeNotFoundError",
        "LibraryError",
        "TimingError",
        "AlgorithmError",
        "InfeasibleError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError), name


def test_node_not_found_is_a_key_error():
    # So dict-style callers can catch KeyError if they prefer.
    assert issubclass(errors.NodeNotFoundError, KeyError)


def test_node_not_found_records_id():
    exc = errors.NodeNotFoundError(42)
    assert exc.node_id == 42
    assert "42" in str(exc)


def test_infeasible_is_algorithm_error():
    assert issubclass(errors.InfeasibleError, errors.AlgorithmError)


def test_catching_base_class_catches_subclass():
    with pytest.raises(errors.ReproError):
        raise errors.TreeStructureError("boom")
