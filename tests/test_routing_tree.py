"""RoutingTree structure, traversal and validation tests."""

import pytest

from repro import Driver, RoutingTree
from repro.errors import NodeNotFoundError, TreeError, TreeStructureError
from repro.units import fF, ps


def simple_tree():
    """source -> v1 -> {sink2, v3 -> sink4}"""
    tree = RoutingTree.with_source(driver=Driver(100.0))
    v1 = tree.add_internal(tree.root_id, 10.0, fF(5.0))
    tree.add_sink(v1, 20.0, fF(4.0), capacitance=fF(3.0), required_arrival=ps(100.0))
    v3 = tree.add_internal(v1, 5.0, fF(2.0), buffer_position=False)
    tree.add_sink(v3, 1.0, fF(1.0), capacitance=fF(2.0), required_arrival=ps(50.0))
    return tree


def test_ids_sequential_and_root_zero():
    tree = simple_tree()
    assert tree.root_id == 0
    assert sorted(n.node_id for n in tree.nodes()) == [0, 1, 2, 3, 4]


def test_counts():
    tree = simple_tree()
    assert tree.num_nodes == 5
    assert tree.num_sinks == 2
    assert tree.num_buffer_positions == 1  # v3 is a pure Steiner point


def test_edge_accessors():
    tree = simple_tree()
    edge = tree.edge_to(1)
    assert edge.parent == 0 and edge.child == 1
    assert edge.resistance == 10.0 and edge.capacitance == fF(5.0)


def test_parent_and_children():
    tree = simple_tree()
    assert tree.parent_of(0) is None
    assert tree.parent_of(3) == 1
    assert tuple(tree.children_of(1)) == (2, 3)


def test_postorder_children_before_parents():
    tree = simple_tree()
    order = tree.postorder()
    position = {node: i for i, node in enumerate(order)}
    for node_id in order:
        for child in tree.children_of(node_id):
            assert position[child] < position[node_id]
    assert order[-1] == tree.root_id
    assert len(order) == tree.num_nodes


def test_preorder_parents_before_children():
    tree = simple_tree()
    order = tree.preorder()
    position = {node: i for i, node in enumerate(order)}
    for node_id in order:
        parent = tree.parent_of(node_id)
        if parent is not None:
            assert position[parent] < position[node_id]
    assert order[0] == tree.root_id


def test_depth():
    assert simple_tree().depth() == 3


def test_path_to_root():
    tree = simple_tree()
    assert tree.path_to_root(4) == [4, 3, 1, 0]


def test_total_wire_capacitance():
    tree = simple_tree()
    assert tree.total_wire_capacitance() == pytest.approx(fF(5.0 + 4.0 + 2.0 + 1.0))


def test_validate_accepts_good_tree():
    simple_tree().validate()


def test_cannot_attach_under_sink():
    tree = simple_tree()
    with pytest.raises(TreeStructureError):
        tree.add_sink(2, 1.0, 0.0, capacitance=0.0, required_arrival=0.0)


def test_cannot_attach_under_missing_parent():
    tree = simple_tree()
    with pytest.raises(NodeNotFoundError):
        tree.add_internal(99, 1.0, 0.0)


def test_validate_rejects_internal_leaf():
    tree = RoutingTree.with_source()
    tree.add_internal(tree.root_id, 1.0, 0.0)
    with pytest.raises(TreeStructureError):
        tree.validate()


def test_validate_rejects_sinkless_tree():
    tree = RoutingTree.with_source()
    with pytest.raises(TreeStructureError):
        tree.validate()


def test_negative_edge_parasitics_rejected():
    tree = RoutingTree.with_source()
    with pytest.raises(TreeError):
        tree.add_internal(tree.root_id, -1.0, 0.0)


def test_node_lookup_missing_raises():
    tree = simple_tree()
    with pytest.raises(NodeNotFoundError):
        tree.node(99)
    with pytest.raises(NodeNotFoundError):
        tree.edge_to(0)  # root has no incoming edge


def test_sinks_and_buffer_positions_listing():
    tree = simple_tree()
    assert [n.node_id for n in tree.sinks()] == [2, 4]
    assert [n.node_id for n in tree.buffer_positions()] == [1]


def test_allowed_buffers_stored_frozen():
    tree = RoutingTree.with_source()
    v = tree.add_internal(tree.root_id, 1.0, 0.0, allowed_buffers=["a", "b"])
    assert tree.node(v).allowed_buffers == frozenset({"a", "b"})


def test_repr_mentions_counts():
    text = repr(simple_tree())
    assert "sinks=2" in text
