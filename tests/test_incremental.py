"""Incremental ECO engine tests.

The headline contract is *bit-identity*: after any sequence of edits,
:meth:`~repro.incremental.engine.IncrementalSolver.resolve` must return
exactly — ``==``, not approx — the slack, assignment, driver load and
DP statistics a from-scratch solve of the edited net returns, for every
registered algorithm and every candidate-store backend.  The parity
corpus below replays randomized edit sequences (payload, structural,
polarity and driver edits mixed) against scratch solves at every step.

The trickier corners get dedicated tests: sibling subtrees that share a
digest (one cache entry must serve both, with node ids translated onto
the right sibling), frontier-cache bounding/eviction, and the SoA
backend's promise that no stale tape reference ever leaks into a cached
frontier.
"""

import json
import random

import pytest

from helpers import random_small_tree
from repro import (
    Driver,
    insert_buffers,
    paper_library,
    random_tree_net,
    two_pin_net,
)
from repro.core.registry import (
    InsertionAlgorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.schedule import auto_compile, cached_schedule
from repro.core.stores import resolve_backend
from repro.errors import AlgorithmError, EditError
from repro.incremental import (
    AddSink,
    FrontierCache,
    FrontierSnapshot,
    IncrementalSolver,
    RemoveSubtree,
    SetSinkCap,
    SetSinkPolarity,
    SetSinkRAT,
    SetWire,
    SplitWire,
    SwapDriver,
    edit_from_dict,
    edit_to_dict,
)
from repro.tree.routing_tree import RoutingTree
from repro.units import fF, ps

BACKENDS = ("object", "soa") if resolve_backend("auto") == "soa" else ("object",)

ALGORITHMS = ("fast", "lillis", "van_ginneken")


def names(assignment):
    return {node_id: buffer.name for node_id, buffer in assignment.items()}


def scratch_solve(tree, library, algorithm, backend, **options):
    # auto_compile(False): keep the global schedule cache out of the
    # comparison; the walk and interpreter paths are themselves
    # bit-identical (test_schedule.py).
    with auto_compile(False):
        return insert_buffers(
            tree, library, algorithm=algorithm, backend=backend, **options
        )


def assert_parity(result, tree, library, algorithm, backend, **options):
    expected = scratch_solve(tree, library, algorithm, backend, **options)
    assert result.slack == expected.slack
    assert result.driver_load == expected.driver_load
    assert names(result.assignment) == names(expected.assignment)
    assert result.stats.root_candidates == expected.stats.root_candidates
    assert result.stats.peak_list_length == expected.stats.peak_list_length
    assert (
        result.stats.candidates_generated
        == expected.stats.candidates_generated
    )
    assert result.stats.algorithm == expected.stats.algorithm


def library_for(algorithm):
    return paper_library(1) if algorithm == "van_ginneken" else paper_library(4)


# ----------------------------------------------------------------------
# Edit algebra
# ----------------------------------------------------------------------


class TestEditAlgebra:
    @pytest.fixture
    def tree(self):
        return random_small_tree(13)

    def test_sink_edit_rejects_non_sink(self, tree):
        with pytest.raises(EditError, match="not a sink"):
            SetSinkRAT(node=tree.root_id, required_arrival=ps(1.0)).apply(tree)

    def test_unknown_node_is_edit_error(self, tree):
        with pytest.raises(EditError, match="does not exist"):
            SetSinkCap(node=999, capacitance=fF(1.0)).apply(tree)

    def test_negative_cap_rejected_before_mutation(self, tree):
        sink = tree.sinks()[0]
        before = sink.capacitance
        with pytest.raises(EditError, match=">= 0"):
            SetSinkCap(node=sink.node_id, capacitance=-1.0).apply(tree)
        assert tree.node(sink.node_id).capacitance == before

    def test_wire_edit_rejects_root(self, tree):
        with pytest.raises(EditError, match="no incoming wire"):
            SetWire(node=tree.root_id, resistance=1.0, capacitance=1.0).apply(tree)

    def test_split_fraction_bounds(self, tree):
        sink = tree.sinks()[0].node_id
        for fraction in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(EditError, match="fraction"):
                SplitWire(node=sink, fraction=fraction).apply(tree)

    def test_remove_rejects_root_and_last_child(self, tree):
        with pytest.raises(EditError, match="no incoming wire"):
            RemoveSubtree(node=tree.root_id).apply(tree)
        # The source's single child cannot be removed.
        only_child = tree.children_of(tree.root_id)[0]
        with pytest.raises(EditError, match="childless"):
            RemoveSubtree(node=only_child).apply(tree)

    def test_polarity_values(self, tree):
        sink = tree.sinks()[0].node_id
        with pytest.raises(EditError, match="polarity"):
            SetSinkPolarity(node=sink, polarity=0).apply(tree)

    def test_codec_round_trip(self):
        edits = [
            SetSinkRAT(node=3, required_arrival=9e-10),
            SetSinkCap(node=4, capacitance=2e-14),
            SetSinkPolarity(node=4, polarity=-1),
            SetWire(node=5, resistance=3.5, capacitance=1e-15, length=20.0),
            SwapDriver(resistance=120.0, intrinsic_delay=1e-12),
            SwapDriver(resistance=None),
            AddSink(parent=2, edge_resistance=1.0, edge_capacitance=2e-15,
                    capacitance=5e-15, required_arrival=8e-10, polarity=-1),
            SplitWire(node=7, fraction=0.25, buffer_position=False,
                      allowed_buffers=("b1", "b2")),
            RemoveSubtree(node=9),
        ]
        for edit in edits:
            assert edit_from_dict(edit_to_dict(edit)) == edit

    def test_codec_rejects_unknown_op_and_fields(self):
        with pytest.raises(EditError, match="unknown edit op"):
            edit_from_dict({"op": "teleport", "node": 1})
        with pytest.raises(EditError, match="unknown fields"):
            edit_from_dict({"op": "set_sink_rat", "node": 1,
                            "required_arrival": 1e-9, "bogus": 2})
        with pytest.raises(EditError, match="must be an object"):
            edit_from_dict(["set_sink_rat"])
        with pytest.raises(EditError, match="bad 'set_sink_rat'"):
            edit_from_dict({"op": "set_sink_rat", "node": 1})


# ----------------------------------------------------------------------
# Tree mutation API
# ----------------------------------------------------------------------


class TestTreeMutations:
    def test_split_edge_conserves_parasitics_exactly(self):
        tree = random_small_tree(5)
        child = tree.sinks()[0].node_id
        edge = tree.edge_to(child)
        total_r, total_c = edge.resistance, edge.capacitance
        new_id = tree.split_edge(child, fraction=0.3)
        upper = tree.edge_to(new_id)
        lower = tree.edge_to(child)
        assert upper.resistance + lower.resistance == total_r
        assert upper.capacitance + lower.capacitance == total_c
        assert tree.edge_to(child).parent == new_id
        tree.validate()

    def test_split_edge_preserves_sibling_order(self):
        tree = RoutingTree.with_source(driver=Driver(resistance=100.0))
        a = tree.add_sink(0, 1.0, fF(1.0), capacitance=fF(5.0),
                          required_arrival=ps(100.0))
        b = tree.add_sink(0, 1.0, fF(1.0), capacitance=fF(5.0),
                          required_arrival=ps(200.0))
        new_id = tree.split_edge(a, fraction=0.5)
        assert tree.children_of(0) == (new_id, b)

    def test_remove_subtree_removes_whole_subtree(self):
        tree = random_small_tree(8)
        # Find a node with >= 2 children; remove one child's subtree.
        victim = None
        for node in tree.nodes():
            children = tree.children_of(node.node_id)
            if len(children) >= 2:
                victim = children[0]
                break
        if victim is None:
            pytest.skip("seed produced a pure chain")
        before = tree.num_nodes
        removed = tree.remove_subtree(victim)
        assert tree.num_nodes == before - len(removed)
        tree.validate()

    def test_mutation_invalidates_cached_schedule(self, paper_lib8):
        tree = random_small_tree(21)
        insert_buffers(tree, paper_lib8)  # populates the schedule cache
        assert cached_schedule(tree, paper_lib8) is not None
        internal = tree.children_of(tree.root_id)[0]
        edge = tree.edge_to(internal)
        tree.set_edge(internal, resistance=edge.resistance * 2.0)
        assert cached_schedule(tree, paper_lib8) is None
        # And a repeat solve reflects the edit (no stale answer).
        fresh = insert_buffers(tree, paper_lib8)
        with auto_compile(False):
            expected = insert_buffers(tree, paper_lib8)
        assert fresh.slack == expected.slack

    def test_driver_assignment_invalidates_schedule(self, paper_lib8):
        tree = random_small_tree(22)
        insert_buffers(tree, paper_lib8)
        tree.driver = Driver(resistance=50.0)
        assert cached_schedule(tree, paper_lib8) is None


# ----------------------------------------------------------------------
# Randomized edit-replay parity corpus
# ----------------------------------------------------------------------


def polarity_tree(seed):
    """A random multi-pin net with a mix of sink polarities."""
    rng = random.Random(seed)
    tree = random_tree_net(
        8, seed=seed, required_arrival=(ps(400.0), ps(2500.0)),
        driver=Driver(resistance=rng.uniform(100.0, 400.0)),
    )
    for sink in tree.sinks()[::2]:
        tree.set_sink(sink.node_id, polarity=-1)
    return tree


def random_edit(tree, rng):
    """One random valid edit against the current tree state."""
    sinks = [node.node_id for node in tree.sinks()]
    non_root = [
        node.node_id for node in tree.nodes() if node.node_id != tree.root_id
    ]
    parents = [node.node_id for node in tree.nodes() if not node.is_sink]
    removable = [
        node_id for node_id in non_root
        if len(tree.children_of(tree.edge_to(node_id).parent)) >= 2
    ]
    choices = ["rat", "cap", "polarity", "wire", "wire", "driver", "split",
               "add"]
    if removable:
        choices.append("remove")
    kind = rng.choice(choices)
    if kind == "rat":
        return SetSinkRAT(node=rng.choice(sinks),
                          required_arrival=ps(rng.uniform(100.0, 3000.0)))
    if kind == "cap":
        return SetSinkCap(node=rng.choice(sinks),
                          capacitance=fF(rng.uniform(2.0, 50.0)))
    if kind == "polarity":
        return SetSinkPolarity(node=rng.choice(sinks),
                               polarity=rng.choice((1, -1)))
    if kind == "wire":
        node = rng.choice(non_root)
        edge = tree.edge_to(node)
        return SetWire(
            node=node,
            resistance=edge.resistance * rng.uniform(0.5, 2.0),
            capacitance=edge.capacitance * rng.uniform(0.5, 2.0),
        )
    if kind == "driver":
        return SwapDriver(resistance=rng.uniform(50.0, 500.0))
    if kind == "split":
        return SplitWire(node=rng.choice(non_root),
                         fraction=rng.uniform(0.2, 0.8))
    if kind == "add":
        return AddSink(
            parent=rng.choice(parents),
            edge_resistance=rng.uniform(1.0, 50.0),
            edge_capacitance=fF(rng.uniform(1.0, 10.0)),
            capacitance=fF(rng.uniform(2.0, 30.0)),
            required_arrival=ps(rng.uniform(200.0, 2000.0)),
            polarity=rng.choice((1, -1)),
        )
    return RemoveSubtree(node=rng.choice(removable))


class TestReplayParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_random_edit_replay(self, algorithm, backend, seed):
        library = library_for(algorithm)
        tree = polarity_tree(seed)
        solver = IncrementalSolver(
            tree, library, algorithm=algorithm, backend=backend
        )
        assert_parity(solver.resolve(), tree, library, algorithm, backend)
        rng = random.Random(seed * 1000 + 7)
        for _ in range(8):
            for _ in range(rng.randrange(1, 3)):
                solver.apply(random_edit(tree, rng))
            assert_parity(
                solver.resolve(), tree, library, algorithm, backend
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trunk_replay(self, backend):
        library = paper_library(4)
        tree = two_pin_net(
            length=8000.0, sink_capacitance=fF(20.0),
            required_arrival=ps(900.0), driver=Driver(resistance=200.0),
            num_segments=40,
        )
        solver = IncrementalSolver(tree, library, backend=backend)
        solver.resolve()
        rng = random.Random(99)
        sink = tree.sinks()[0].node_id
        internals = [
            node.node_id for node in tree.nodes()
            if not node.is_sink and not node.is_source
        ]
        for edit in (
            SetWire(node=internals[3], resistance=12.0, capacitance=fF(9.0)),
            SetSinkRAT(node=sink, required_arrival=ps(700.0)),
            SwapDriver(resistance=111.0),
            SetWire(node=internals[-2], resistance=1.0, capacitance=fF(1.0)),
            SplitWire(node=internals[len(internals) // 2], fraction=0.5),
        ):
            solver.apply(edit)
            assert_parity(solver.resolve(), tree, library, "fast", backend)
        # Wire edits near the driver must not re-run the whole trunk.
        solver.apply(SetWire(node=internals[0], resistance=2.0,
                             capacitance=fF(2.0)))
        solver.resolve()
        assert solver.last_executed_fraction < 0.2
        assert solver.last_spliced_subtrees >= 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_destructive_pruning_options_respected(self, backend):
        library = paper_library(4)
        tree = two_pin_net(
            length=5000.0, sink_capacitance=fF(15.0),
            required_arrival=ps(800.0), driver=Driver(resistance=150.0),
            num_segments=16,
        )
        solver = IncrementalSolver(
            tree, library, algorithm="fast", backend=backend,
            destructive_pruning=True,
        )
        solver.apply(SetSinkRAT(node=tree.sinks()[0].node_id,
                                required_arrival=ps(650.0)))
        result = solver.resolve()
        assert result.stats.algorithm == "fast-destructive"
        assert_parity(result, tree, library, "fast", backend,
                      destructive_pruning=True)

    def test_rejected_add_sink_leaves_tree_untouched(self):
        """A rejected attach must not leave a dangling vertex (the edit
        contract: failure leaves the net untouched)."""
        library = paper_library(4)
        tree = polarity_tree(11)
        solver = IncrementalSolver(tree, library)
        solver.resolve()
        before = tree.num_nodes
        with pytest.raises(EditError, match=">= 0"):
            solver.apply(AddSink(
                parent=tree.root_id, edge_resistance=-1.0,
                edge_capacitance=fF(1.0), capacitance=fF(5.0),
                required_arrival=ps(800.0),
            ))
        assert tree.num_nodes == before
        tree.validate()  # no dangling node
        # Structural edits still work afterwards.
        solver.apply(AddSink(
            parent=tree.root_id, edge_resistance=1.0,
            edge_capacitance=fF(1.0), capacitance=fF(5.0),
            required_arrival=ps(800.0),
        ))
        assert_parity(solver.resolve(), tree, library, "fast",
                      solver.backend)

    def test_rejected_edit_leaves_session_consistent(self):
        library = paper_library(4)
        tree = polarity_tree(4)
        solver = IncrementalSolver(tree, library)
        solver.resolve()
        with pytest.raises(EditError):
            solver.apply(SetSinkCap(node=tree.root_id, capacitance=fF(1.0)))
        solver.apply(SetSinkRAT(node=tree.sinks()[0].node_id,
                                required_arrival=ps(555.0)))
        assert_parity(solver.resolve(), tree, library, "fast",
                      solver.backend)

    def test_resolve_without_edits_returns_cached_result(self):
        library = paper_library(4)
        tree = polarity_tree(5)
        solver = IncrementalSolver(tree, library)
        first = solver.resolve()
        assert solver.resolve() is first
        assert solver.resolves == 1
        solver.apply(SwapDriver(resistance=99.0))
        assert solver.resolve() is not first

    def test_algorithm_without_add_buffer_op_is_rejected(self):
        class Opaque(InsertionAlgorithm):
            complexity = "O(?)"
            summary = "no add_buffer_op"

            def run(self, tree, library, driver=None, backend="object",
                    **options):  # pragma: no cover - never called
                raise AssertionError

        register_algorithm("_opaque_test")(Opaque)
        try:
            with pytest.raises(AlgorithmError, match="incrementally"):
                IncrementalSolver(polarity_tree(6), paper_library(2),
                                  algorithm="_opaque_test")
        finally:
            unregister_algorithm("_opaque_test")


# ----------------------------------------------------------------------
# Sibling subtrees sharing a digest
# ----------------------------------------------------------------------


def twin_arm_tree(arms=2):
    """A root with ``arms`` structurally identical subtrees."""
    tree = RoutingTree.with_source(driver=Driver(resistance=150.0))
    for _ in range(arms):
        v = tree.add_internal(0, 5.0, fF(4.0))
        w = tree.add_internal(v, 3.0, fF(2.0))
        tree.add_sink(w, 2.0, fF(1.0), capacitance=fF(10.0),
                      required_arrival=ps(900.0))
        tree.add_sink(w, 2.5, fF(1.5), capacitance=fF(12.0),
                      required_arrival=ps(1100.0))
    return tree


class TestSiblingDigestSharing:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_edit_in_one_arm_translates_the_other(self, backend):
        library = paper_library(4)
        tree = twin_arm_tree()
        solver = IncrementalSolver(tree, library, backend=backend)
        solver.resolve()
        # Dirty arm 1; arm 2 must be served from the digest-shared
        # cache entry with its *own* node ids in the assignment.
        first_sink = tree.sinks()[0].node_id
        solver.apply(SetSinkRAT(node=first_sink, required_arrival=ps(600.0)))
        result = solver.resolve()
        assert solver.last_spliced_subtrees >= 1
        assert_parity(result, tree, library, "fast", backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_three_identical_arms_one_execution(self, backend):
        library = paper_library(4)
        tree = twin_arm_tree(arms=3)
        cache = FrontierCache()
        solver = IncrementalSolver(tree, library, backend=backend,
                                   cache=cache)
        result = solver.resolve()
        assert_parity(result, tree, library, "fast", backend)
        # Make every arm dirty-adjacent in turn; each still matches.
        for sink in [arm.node_id for arm in tree.sinks()][:3]:
            solver.apply(SetSinkCap(node=sink, capacitance=fF(17.0)))
            assert_parity(solver.resolve(), tree, library, "fast", backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shared_cache_across_sessions(self, backend):
        """Two sessions over identical nets share frontier entries."""
        library = paper_library(4)
        cache = FrontierCache()
        first = IncrementalSolver(twin_arm_tree(), library, backend=backend,
                                  cache=cache)
        first.resolve()
        hits_before = cache.stats()["hits"]
        second = IncrementalSolver(twin_arm_tree(), library, backend=backend,
                                   cache=cache)
        result = second.resolve()
        assert cache.stats()["hits"] > hits_before
        assert_parity(result, second.tree, library, "fast", backend)


# ----------------------------------------------------------------------
# Frontier cache behavior
# ----------------------------------------------------------------------


class TestFrontierCache:
    def snapshot(self, k=4):
        return FrontierSnapshot(
            tuple(float(i) for i in range(k)),
            tuple(float(i) for i in range(k)),
            (), None, 0, 1, 1,
        )

    def test_counters_and_hit_rate(self):
        cache = FrontierCache()
        assert cache.get("a") is None
        snapshot = self.snapshot()
        cache.put("a", snapshot)
        assert cache.get("a") is snapshot
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1
        assert stats["bytes"] == snapshot.nbytes

    def test_byte_bound_evicts_lru(self):
        snapshot = self.snapshot()
        cache = FrontierCache(max_bytes=3 * snapshot.nbytes)
        for key in ("a", "b", "c"):
            cache.put(key, self.snapshot())
        cache.get("a")  # refresh a; b is now LRU
        cache.put("d", self.snapshot())
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["bytes"] <= cache.max_bytes

    def test_single_oversized_entry_survives(self):
        cache = FrontierCache(max_bytes=1)
        cache.put("big", self.snapshot(64))
        assert "big" in cache

    def test_entry_bound(self):
        cache = FrontierCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.put(key, self.snapshot())
        assert len(cache) == 2 and "a" not in cache

    def test_refresh_replaces_bytes_exactly(self):
        cache = FrontierCache()
        cache.put("a", self.snapshot(4))
        cache.put("a", self.snapshot(8))
        assert cache.stats()["bytes"] == self.snapshot(8).nbytes

    def test_validation(self):
        with pytest.raises(ValueError):
            FrontierCache(max_bytes=0)
        with pytest.raises(ValueError):
            FrontierCache(max_entries=0)


# ----------------------------------------------------------------------
# SoA provenance safety
# ----------------------------------------------------------------------


@pytest.mark.skipif("soa" not in BACKENDS, reason="numpy not installed")
class TestSoAProvenanceSafety:
    def test_cached_frontiers_survive_many_resolves(self):
        """Snapshots must never hold stale tape references: entries
        captured long ago still splice and backtrace correctly."""
        library = paper_library(4)
        tree = polarity_tree(7)
        solver = IncrementalSolver(tree, library, backend="soa")
        solver.resolve()
        sinks = [node.node_id for node in tree.sinks()]
        # Many resolves — each rewinds the factory tape.
        for index, sink in enumerate(sinks * 2):
            solver.apply(SetSinkRAT(
                node=sink, required_arrival=ps(500.0 + 37.0 * index)
            ))
            assert_parity(solver.resolve(), tree, library, "fast", "soa")

    def test_provenance_chains_are_depth_bounded(self):
        """Long sessions must not pin one tape archive per resolve: the
        chain of archives reachable through spliced decisions is capped
        (deep entries flatten to ExpandedDecision at archive time)."""
        from repro.core.stores.soa import _CHAIN_LIMIT

        library = paper_library(4)
        tree = two_pin_net(
            length=6000.0, sink_capacitance=fF(20.0),
            required_arrival=ps(900.0), driver=Driver(resistance=180.0),
            num_segments=24,
        )
        cache = FrontierCache()
        solver = IncrementalSolver(tree, library, backend="soa",
                                   cache=cache)
        solver.resolve()
        internals = [
            node.node_id for node in tree.nodes()
            if not node.is_sink and not node.is_source
        ]
        rng = random.Random(3)
        # Alternate wire edits: each resolve splices frontiers captured
        # by earlier resolves, which is exactly what builds chains.
        for step in range(4 * _CHAIN_LIMIT):
            node = rng.choice(internals)
            edge = tree.edge_to(node)
            solver.apply(SetWire(
                node=node,
                resistance=edge.resistance * rng.uniform(0.8, 1.25),
                capacitance=edge.capacitance * rng.uniform(0.8, 1.25),
            ))
            assert_parity(solver.resolve(), tree, library, "fast", "soa")
        depths = {
            snapshot.archive.depth
            for snapshot in cache._entries.values()
            if snapshot.archive is not None
        }
        assert depths and max(depths) <= _CHAIN_LIMIT

    def test_snapshot_decisions_are_persistent_objects(self):
        from repro.core.stores.soa import ArchivedDecision, TapeRef

        library = paper_library(4)
        tree = twin_arm_tree()
        cache = FrontierCache()
        solver = IncrementalSolver(tree, library, backend="soa", cache=cache)
        solver.resolve()
        for snapshot in cache._entries.values():
            decisions = snapshot.decision_list()
            for decision in decisions:
                assert not isinstance(decision, TapeRef)
                assert isinstance(decision, ArchivedDecision)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestEditCLI:
    def test_edit_replay_with_verify(self, tmp_path, capsys):
        from repro.cli import main
        from repro.tree.io import library_to_dict, save_tree

        tree = polarity_tree(9)
        net_path = tmp_path / "net.json"
        save_tree(tree, net_path)
        library_path = tmp_path / "lib.json"
        library_path.write_text(
            json.dumps(library_to_dict(paper_library(4)))
        )
        sink = tree.sinks()[0]
        internal = tree.children_of(tree.root_id)[0]
        edge = tree.edge_to(internal)
        edits_path = tmp_path / "eco.json"
        edits_path.write_text(json.dumps([
            {"op": "set_sink_rat", "node": sink.node_id,
             "required_arrival": sink.required_arrival * 0.8},
            {"op": "set_wire", "node": internal,
             "resistance": edge.resistance * 1.5,
             "capacitance": edge.capacitance},
            {"op": "swap_driver", "resistance": 77.0},
        ]))
        out_path = tmp_path / "out.json"
        code = main([
            "edit", "--net", str(net_path), "--library", str(library_path),
            "--edits", str(edits_path), "--verify",
            "--output", str(out_path),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "ok" in output and "MISMATCH" not in output
        payload = json.loads(out_path.read_text())
        assert len(payload["steps"]) == 3
        assert all(step["verified"] for step in payload["steps"])
        assert payload["final_assignment"]

    def test_edit_rejects_bad_script(self, tmp_path, capsys):
        from repro.cli import main
        from repro.tree.io import library_to_dict, save_tree

        tree = polarity_tree(10)
        net_path = tmp_path / "net.json"
        save_tree(tree, net_path)
        library_path = tmp_path / "lib.json"
        library_path.write_text(json.dumps(library_to_dict(paper_library(2))))
        edits_path = tmp_path / "eco.json"
        edits_path.write_text(json.dumps([{"op": "teleport"}]))
        code = main([
            "edit", "--net", str(net_path), "--library", str(library_path),
            "--edits", str(edits_path),
        ])
        assert code == 2
        assert "unknown edit op" in capsys.readouterr().err
