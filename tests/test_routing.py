"""Execution routing: features, cost model, router policies, workload
capture/replay — and the parity doctrine that routing may only ever
*pick* an execution, never change its answer."""

from __future__ import annotations

import json
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import insert_buffers, paper_library, uniform_random_library
from repro.core.batch import SolverPool
from repro.core.schedule import auto_compile, compile_net
from repro.core.stores import resolve_backend
from repro.core.stores.batch_axis import batch_axis_available
from repro.experiments.workloads import corner_variants
from repro.routing.cost_model import CostModel, default_model
from repro.routing.features import (
    RequestFeatures,
    estimate_instructions,
    features_of,
)
from repro.routing.router import (
    COMPOSITE_MARGIN,
    POLICIES,
    ExecutionPlan,
    Router,
    default_policy,
    set_default_policy,
    validate_policy,
)
from repro.routing.workload import (
    ReplayError,
    WorkloadLog,
    _result_fingerprint,
    compiled_digest,
    read_log,
    replay,
)
from repro.tree.builders import random_tree_net

# ---------------------------------------------------------------------
# Feature extraction


class TestFeatures:
    def test_estimate_instructions_is_exact(self):
        """The closed-form estimate equals what compile_net emits, so
        routing a plain tree and its compiled form agree."""
        library = paper_library(4)
        for sinks, seed in ((2, 1), (5, 2), (16, 3), (40, 4)):
            tree = random_tree_net(sinks, seed=seed)
            compiled = compile_net(tree, library)
            assert estimate_instructions(tree) == compiled.num_instructions

    def test_tree_and_compiled_features_agree(self):
        library = paper_library(8)
        tree = random_tree_net(12, seed=9)
        compiled = compile_net(tree, library)
        assert features_of(tree, library) == features_of(compiled)

    def test_work_is_quadratic_in_positions(self):
        features = RequestFeatures(
            positions=10, sinks=4, library_size=8, instructions=30
        )
        assert features.work == 10 * 10 * 8

    def test_round_trip_ignores_unknown_keys(self):
        features = features_of(
            random_tree_net(6, seed=5), paper_library(4),
            lanes=3, jobs=2, dirty_fraction=0.5, kind="session",
        )
        data = dict(features.to_dict(), future_field=123)
        assert RequestFeatures.from_dict(data) == features

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            RequestFeatures(
                positions=1, sinks=1, library_size=1,
                instructions=1, kind="nope",
            )

    def test_tree_requires_library(self):
        with pytest.raises(ValueError, match="library"):
            features_of(random_tree_net(4, seed=1))


# ---------------------------------------------------------------------
# Cost model


def _toy_spec(**overrides):
    """A hand-written model spec with simple, assertable curves."""
    spec = {
        "version": "routing-model/test",
        "base": {
            # object is cheap at small work, loses at large work.
            "object-compiled": {"knots": [[1, 1e-4], [1e6, 1.0]]},
            "object-walk": {"knots": [[1, 2e-4], [1e6, 2.0]]},
            "soa-compiled": {"knots": [[1, 5e-4], [1e6, 0.1]]},
            "soa-walk": {"knots": [[1, 6e-4], [1e6, 0.5]]},
        },
        "batch_axis": {
            "work": [1, 1e6],
            "lanes": [2, 64],
            "speedup": [[1.0, 2.0], [2.0, 8.0]],
        },
        "splice": {"overhead_fraction": 0.1},
        "parallel": {"residual_fraction": 0.25, "overhead_seconds": 0.01},
    }
    spec.update(overrides)
    return spec


def _features(**overrides):
    base = dict(positions=100, sinks=10, library_size=8, instructions=300)
    base.update(overrides)
    return RequestFeatures(**base)


class TestCostModel:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="version"):
            CostModel.from_spec({"base": {}})
        with pytest.raises(ValueError, match="lacks base curves"):
            CostModel.from_spec({"version": "x", "base": {}})
        bad = _toy_spec()
        bad["base"]["object-compiled"]["knots"] = [[10, 1.0], [1, 2.0]]
        with pytest.raises(ValueError, match="unsorted"):
            CostModel.from_spec(bad)

    def test_interpolation_clamps_below_first_knot(self):
        """Tiny work never predicts below the launch-overhead floor."""
        model = CostModel.from_spec(_toy_spec())
        plan = ExecutionPlan("object", "compiled")
        tiny = model.predict_raw(
            plan, _features(positions=1, library_size=1)
        )
        assert tiny == pytest.approx(1e-4)

    def test_prediction_monotone_in_work(self):
        model = CostModel.from_spec(_toy_spec())
        plan = ExecutionPlan("soa", "compiled")
        costs = [
            model.predict_raw(plan, _features(positions=p))
            for p in (10, 100, 1000, 10_000)
        ]
        assert costs == sorted(costs)

    def test_sequential_group_scales_with_lanes(self):
        model = CostModel.from_spec(_toy_spec())
        plan = ExecutionPlan("object", "compiled")
        solo = model.predict_raw(plan, _features(lanes=1))
        group = model.predict_raw(plan, _features(lanes=8))
        assert group == pytest.approx(8 * solo)

    def test_batched_group_beats_sequential_at_wide_lanes(self):
        model = CostModel.from_spec(_toy_spec())
        features = _features(positions=1000, lanes=64)
        sequential = model.predict_raw(
            ExecutionPlan("soa", "compiled"), features
        )
        batched = model.predict_raw(
            ExecutionPlan("soa", "compiled", batch_axis=True), features
        )
        assert batched < sequential

    def test_splice_scales_with_dirty_fraction(self):
        model = CostModel.from_spec(_toy_spec())
        plan = ExecutionPlan("object", "splice")
        full = model.predict_raw(
            plan, _features(dirty_fraction=1.0, kind="session")
        )
        dirty = model.predict_raw(
            plan, _features(dirty_fraction=0.1, kind="session")
        )
        assert dirty < full
        scratch = model.predict_raw(
            ExecutionPlan("object", "compiled"),
            _features(dirty_fraction=0.1, kind="session"),
        )
        assert dirty < scratch

    def test_parallel_amdahl_shape(self):
        model = CostModel.from_spec(_toy_spec())
        features = _features(positions=900, jobs=4)
        base = model.predict_raw(
            ExecutionPlan("object", "compiled"), features
        )
        split = model.predict_raw(
            ExecutionPlan("object", "compiled", parallel=True), features
        )
        assert split == pytest.approx(base * (0.25 + 0.75 / 4) + 0.01)

    def test_observe_moves_scale_toward_measurement(self):
        model = CostModel.from_spec(_toy_spec())
        plan = ExecutionPlan("object", "compiled")
        features = _features()
        raw = model.predict_raw(plan, features)
        for _ in range(50):
            model.observe(plan, features, raw * 2.0)
        corrected = model.predict(plan, features)
        assert corrected == pytest.approx(raw * 2.0, rel=0.05)
        stats = model.stats()
        assert stats["online_updates"] == 50
        assert stats["scales"][plan.strategy] > 1.5
        assert stats["abs_error_seconds"] > 0.0

    def test_observe_clamps_outliers(self):
        model = CostModel.from_spec(_toy_spec())
        plan = ExecutionPlan("object", "compiled")
        features = _features()
        raw = model.predict_raw(plan, features)
        model.observe(plan, features, raw * 1e6)  # scheduler hiccup
        assert model.stats()["scales"][plan.strategy] <= 1.0 + 0.2 * 20.0

    def test_default_artifact_loads_and_validates(self):
        model = default_model()
        assert model.version.startswith("routing-model/")
        assert default_model() is model  # process-wide singleton


# ---------------------------------------------------------------------
# Plans and policies


class TestExecutionPlan:
    def test_strategy_labels(self):
        assert ExecutionPlan("object", "walk").strategy == "object-walk"
        assert (
            ExecutionPlan("soa", "compiled", batch_axis=True).strategy
            == "soa-compiled+batch"
        )
        assert (
            ExecutionPlan("object", "compiled", parallel=True).strategy
            == "object-compiled+parallel"
        )

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="schedule_mode"):
            ExecutionPlan("object", "sideways")

    def test_round_trip(self):
        plan = ExecutionPlan("soa", "compiled", batch_axis=True)
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan


class TestPolicies:
    def test_all_canonical_policies_validate(self):
        for policy in POLICIES:
            assert validate_policy(policy) == policy
        assert validate_policy("always_object-walk") == "always_object-walk"
        assert validate_policy("always_soa-compiled")

    def test_unknown_policy_rejected(self):
        for bad in ("fastest", "always_gpu", "never_walk", "always_"):
            with pytest.raises(ValueError, match="routing policy"):
                validate_policy(bad)

    def test_default_policy_round_trip(self):
        previous = set_default_policy("model")
        try:
            assert default_policy() == "model"
            assert Router().policy == "model"
        finally:
            set_default_policy(previous)

    def test_static_replicates_legacy_heuristics(self):
        """policy='static' is the old scattered rules, verbatim."""
        router = Router(policy="static", parallel_threshold=1000)
        auto = resolve_backend("auto")
        # Solo solve: resolved backend, compiled, no composite axes.
        plan = router.route(_features())
        assert plan == ExecutionPlan(auto, "compiled")
        # Any structural group batches when the context supports it.
        plan = router.route(_features(lanes=2), supports_batch=True)
        assert plan == ExecutionPlan("soa", "compiled", batch_axis=True)
        # ... but stays sequential when it does not.
        plan = router.route(_features(lanes=2))
        assert plan == ExecutionPlan(auto, "compiled")
        # The instruction floor turns on the partitioned solve.
        plan = router.route(
            _features(instructions=1000), supports_parallel=True
        )
        assert plan.parallel
        plan = router.route(
            _features(instructions=999), supports_parallel=True
        )
        assert not plan.parallel
        # Sessions splice.
        plan = router.route(_features(kind="session"))
        assert plan.schedule_mode == "splice"

    def test_escape_hatches_pin_axes(self):
        features = _features(lanes=4)
        plan = Router(policy="always_object").route(
            features, supports_batch=True
        )
        assert plan.backend == "object" and not plan.batch_axis
        plan = Router(policy="never_batch").route(
            features, supports_batch=True
        )
        assert not plan.batch_axis
        plan = Router(policy="always_walk").route(
            _features(), supports_walk=True
        )
        assert plan.schedule_mode == "walk"
        plan = Router(policy="always_scratch").route(_features(kind="session"))
        assert plan.schedule_mode == "compiled"
        plan = Router(policy="always_object-walk").route(
            _features(), supports_walk=True
        )
        assert plan == ExecutionPlan("object", "walk")

    def test_explicit_backend_beats_routing(self):
        plan = Router(policy="model").route(_features(), backend="object")
        assert plan.backend == "object"

    def test_model_policy_picks_cheapest_candidate(self):
        model = CostModel.from_spec(_toy_spec())
        router = Router(policy="model", model=model)
        # Toy curves make object cheapest at small work ...
        plan = router.route(_features(positions=5), supports_walk=True)
        assert plan == ExecutionPlan("object", "compiled")
        # ... and soa cheapest at large work.
        if resolve_backend("auto") == "soa":
            plan = router.route(_features(positions=5000))
            assert plan == ExecutionPlan("soa", "compiled")

    def test_composite_needs_a_margin(self):
        """A composite plan near a predicted tie loses to the best
        simple plan; a decisive composite win is taken."""
        spec = _toy_spec()
        # Flat surface: batching "wins" by exactly 10% < margin.
        spec["batch_axis"] = {
            "work": [1, 1e6], "lanes": [2, 64],
            "speedup": [[1.1, 1.1], [1.1, 1.1]],
        }
        router = Router(
            policy="model", model=CostModel.from_spec(spec)
        )
        features = _features(positions=5000, lanes=8)
        plan = router.route(features, supports_batch=True)
        assert not plan.batch_axis
        # A 4x predicted win clears COMPOSITE_MARGIN comfortably.
        spec["batch_axis"]["speedup"] = [[4.0, 4.0], [4.0, 4.0]]
        router = Router(
            policy="model", model=CostModel.from_spec(spec)
        )
        plan = router.route(features, supports_batch=True)
        assert plan.batch_axis
        assert COMPOSITE_MARGIN > 1.0

    def test_decision_counters(self):
        router = Router(policy="static")
        for _ in range(3):
            router.route(_features())
        stats = router.stats()
        assert stats["policy"] == "static"
        assert stats["decisions"] == 3
        assert sum(stats["decisions_by_strategy"].values()) == 3
        assert stats["model"]["version"]


# ---------------------------------------------------------------------
# Parity: every candidate plan returns the identical answer


@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=10_000),
)
def test_every_candidate_plan_is_bit_identical(
    sinks, seed, library_size, library_seed
):
    """The routing contract: whatever plan the router picks, the slack,
    assignment, driver load and DP statistics are those of the
    object/walk reference — bit for bit, not approximately."""
    tree = random_tree_net(sinks, seed=seed)
    library = uniform_random_library(library_size, seed=library_seed)
    compiled = compile_net(tree, library)
    with auto_compile(False):
        reference = _result_fingerprint(
            insert_buffers(tree, library, backend="object")
        )
    router = Router(policy="static")
    plans = router.candidate_plans(features_of(compiled), supports_walk=True)
    assert len(plans) >= 2
    for plan in plans:
        if plan.schedule_mode == "walk":
            with auto_compile(False):
                result = insert_buffers(
                    tree, library, backend=plan.backend
                )
        else:
            result = insert_buffers(
                compiled, library, backend=plan.backend
            )
        assert _result_fingerprint(result) == reference, plan.strategy


@pytest.mark.skipif(
    not batch_axis_available(), reason="batch axis needs NumPy"
)
@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.integers(min_value=3, max_value=16),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=8),
)
def test_batch_axis_plan_is_bit_identical(sinks, seed, lanes):
    """The batched group answer matches per-net sequential solves."""
    from repro.core.schedule import run_compiled_group

    library = paper_library(8)
    base = random_tree_net(sinks, seed=seed)
    nets = [
        compile_net(tree, library)
        for _, tree in corner_variants(base, lanes)
    ]
    batched = run_compiled_group(nets, library)
    for net, result in zip(nets, batched):
        expected = insert_buffers(net, library, backend="soa")
        assert _result_fingerprint(result) == _result_fingerprint(expected)


# ---------------------------------------------------------------------
# Workload capture


class TestWorkloadLog:
    def test_record_and_read_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = WorkloadLog(path)
        library = paper_library(4)
        compiled = compile_net(random_tree_net(6, seed=3), library)
        features = features_of(compiled)
        plan = ExecutionPlan("object", "compiled")
        entry = log.record(
            "solve", digest=compiled_digest(compiled),
            features=features, plan=plan, policy="static", seconds=0.01,
        )
        log.close()
        (record,) = read_log(path)
        assert record == entry
        assert record["features"] == features.to_dict()
        assert record["plan"] == plan.to_dict()

    def test_features_capture_omits_payload(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = WorkloadLog(path)  # capture="features"
        library = paper_library(4)
        compiled = compile_net(random_tree_net(6, seed=3), library)
        log.record(
            "solve", digest="d", features=features_of(compiled),
            plan=ExecutionPlan("object", "compiled"),
            policy="static", seconds=0.01,
            payload={"net": {"nodes": []}},
        )
        log.close()
        (record,) = read_log(path)
        assert "net" not in record

    def test_bad_capture_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="capture"):
            WorkloadLog(tmp_path / "x.jsonl", capture="everything")

    def test_read_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"v": 99}\n')
        with pytest.raises(ReplayError, match="version"):
            read_log(path)
        path.write_text('{"v": 1, "kind": "solve"}\n')
        with pytest.raises(ReplayError, match="lacks"):
            read_log(path)
        path.write_text("not json\n")
        with pytest.raises(ReplayError, match="not JSON"):
            read_log(path)

    def test_solver_pool_capture_is_replayable(self, tmp_path):
        """A full-capture pool log round-trips through replay."""
        path = tmp_path / "pool.jsonl"
        library = paper_library(4)
        log = WorkloadLog(path, capture="full")
        pool = SolverPool(library, workload_log=log)
        # Different sink counts: structurally distinct, so the pool
        # logs two solo records rather than one lane group.
        trees = [random_tree_net(5, seed=1), random_tree_net(7, seed=2)]
        expected = pool.solve(trees)
        pool.close()
        log.close()

        records = read_log(path)
        assert len(records) == 2
        report = replay(records, policies=("static",), repeats=1)
        assert report["requests"] == 2
        assert report["parity_checked"] >= 4
        # The logged answers came from these very requests.
        assert report["logged_seconds"] > 0.0
        assert expected[0].slack is not None


# ---------------------------------------------------------------------
# Deprecation of router-bypassing overrides


class TestDeprecations:
    def test_parallel_override_without_policy_warns(self):
        library = paper_library(2)
        with pytest.warns(DeprecationWarning, match="policy"):
            pool = SolverPool(library, parallel="never")
        pool.close()

    def test_parallel_override_with_policy_is_clean(self):
        library = paper_library(2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pool = SolverPool(
                library, parallel="never", policy="static"
            )
            pool.close()
            pool = SolverPool(library)  # no override, no warning
            pool.close()


# ---------------------------------------------------------------------
# Committed replay corpus (the tier-1 regression harness)

CORPUS = "tests/data/workload_mixed.jsonl"


class TestReplayCorpus:
    @pytest.fixture(scope="class")
    def report(self):
        from pathlib import Path

        corpus = Path(__file__).parent / "data" / "workload_mixed.jsonl"
        return replay(
            corpus,
            policies=(
                "static", "model", "always_object", "always_compiled",
            ),
            repeats=1,
        )

    def test_corpus_shape(self, report):
        assert report["schema_version"] == 1
        assert report["requests"] == 40
        kinds = [entry["kind"] for entry in report["per_request"]]
        assert kinds.count("solve") == 24
        assert kinds.count("batch") == 8
        assert kinds.count("session") == 8

    def test_identical_results_across_policies(self, report):
        """replay() raises ReplayError on any parity breach, so a
        returned report *is* the bit-identity proof; every request
        checked at least two plans."""
        assert report["parity_checked"] >= 2 * report["requests"]

    def test_regret_accounting_is_sane(self, report):
        oracle = report["oracle_seconds"]
        assert oracle > 0.0
        for name, bucket in report["policies"].items():
            # No policy beats the oracle, and regret is exactly the
            # gap to it (same shared measurement table).
            assert bucket["total_seconds"] >= oracle - 1e-12
            assert bucket["regret_seconds"] == pytest.approx(
                bucket["total_seconds"] - oracle
            )
            assert bucket["regret_seconds"] >= -1e-12
            assert bucket["speedup_vs_oracle"] <= 1.0 + 1e-9
            assert sum(bucket["decisions_by_strategy"].values()) == 40
        assert report["policies"]["static"]["speedup_vs_static"] == 1.0

    def test_per_request_regret_consistent(self, report):
        for entry in report["per_request"]:
            best = entry["measured_seconds"][entry["best"]]
            for name, chosen in entry["chosen"].items():
                assert entry["measured_seconds"][chosen] >= best - 1e-12
                assert entry["regret_seconds"][name] == pytest.approx(
                    entry["measured_seconds"][chosen] - best
                )

    def test_policies_only_change_time_never_answers(self, report):
        """Each policy's chosen plan appears in the shared measurement
        table — pricing never executed anything unmeasured."""
        for entry in report["per_request"]:
            for chosen in entry["chosen"].values():
                assert chosen in entry["measured_seconds"]
