"""Golden-schema lock on the ``/stats`` payload.

``/stats`` is the service's observability contract: dashboards and the
replay tooling key on its exact field names.  This test snapshots the
full JSON *shape* (recursive key structure with scalar types, dynamic
counter dicts normalized) into ``tests/data/stats_schema.json`` so any
added, removed or renamed field shows up as a reviewable golden diff —
the routing block included.

Regenerate after an intentional change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \\
        tests/test_stats_schema.py
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from pathlib import Path

import pytest

from helpers import random_small_tree
from repro import Driver, paper_library, random_tree_net
from repro.experiments.workloads import corner_variants
from repro.service.client import ServiceClient
from repro.service.server import BufferServer
from repro.units import ps

GOLDEN = Path(__file__).parent / "data" / "stats_schema.json"

#: Keys whose sub-keys are runtime-dependent counters (per-strategy,
#: per-backend, per-lane-width...).  Their *contents* vary by machine
#: and workload; only their presence is part of the schema.
DYNAMIC_KEYS = {
    "decisions_by_strategy",
    "scales",
    "solves_by_backend",
    "lanes_histogram",
    "kernels",
}


def shape_of(value, key=None):
    """The JSON shape: dicts keep sorted keys, scalars become type
    names, lists keep one element's shape, dynamic dicts collapse."""
    if key in DYNAMIC_KEYS:
        return "dict[dynamic]"
    if isinstance(value, dict):
        return {k: shape_of(value[k], k) for k in sorted(value)}
    if isinstance(value, list):
        return [shape_of(value[0])] if value else []
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if value is None:
        return "null"
    return "string"


class _Harness:
    def __init__(self, **kwargs) -> None:
        self.server = BufferServer(port=0, **kwargs)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(10), "server did not start"
        self.client = ServiceClient(port=self.server.port, timeout=30.0)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()

    def shutdown(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture()
def harness():
    h = _Harness(jobs=1, cache_size=64)
    try:
        yield h
    finally:
        h.shutdown()


def test_stats_schema_matches_golden(harness):
    """Exercise every subsystem once (solve, batch, session), then
    lock the full /stats shape against the committed golden."""
    library = paper_library(4)
    net = random_tree_net(
        8, seed=11, required_arrival=(ps(500.0), ps(2000.0)),
        driver=Driver(resistance=200.0),
    )
    harness.client.solve(net, library)
    group = [v for _, v in corner_variants(random_small_tree(7), 4)]
    harness.client.solve_batch(group, library)
    session = harness.client.create_session(net, library)
    session.resolve()
    sink = net.sinks()[0]
    session.edit({"op": "set_sink_rat", "node": sink.node_id,
                  "required_arrival": sink.required_arrival * 0.9})
    session.resolve()

    stats = harness.client.stats()
    shape = shape_of(stats)

    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.write_text(json.dumps(shape, indent=2, sort_keys=True) + "\n")
    golden = json.loads(GOLDEN.read_text())
    assert shape == golden, (
        "/stats shape drifted from tests/data/stats_schema.json — if "
        "intentional, regenerate with REPRO_REGEN_GOLDEN=1 and review "
        "the diff"
    )

    # The routing block is the PR8 contract; pin its keys explicitly so
    # a golden regeneration cannot silently drop them.
    routing = stats["routing"]
    assert set(routing) == {
        "policy", "decisions", "observations", "decisions_by_strategy",
        "model", "workload_records",
    }
    assert set(routing["model"]) == {
        "version", "online_updates", "predicted_seconds",
        "actual_seconds", "abs_error_seconds", "scales",
    }
    assert routing["decisions"] >= 1
    assert routing["observations"] >= 1
