"""Add-wire operation tests."""

import pytest

from helpers import make_candidates, qc

from repro.core.pruning import is_nonredundant
from repro.core.wire_ops import add_wire


def test_transform_formula():
    cands = make_candidates([(10.0, 2.0)])
    out = add_wire(cands, resistance=3.0, capacitance=4.0)
    # q' = 10 - 3 * (4/2 + 2) = -2 ; c' = 2 + 4 = 6
    assert qc(out) == [(-2.0, 6.0)]


def test_zero_wire_is_identity():
    cands = make_candidates([(1.0, 0.0), (2.0, 1.0)])
    out = add_wire(cands, 0.0, 0.0)
    assert out is cands
    assert qc(out) == [(1.0, 0.0), (2.0, 1.0)]


def test_pure_capacitance_shifts_c_only():
    cands = make_candidates([(1.0, 0.0), (2.0, 1.0)])
    out = add_wire(cands, 0.0, 5.0)
    assert qc(out) == [(1.0, 5.0), (2.0, 6.0)]


def test_pure_resistance_tilts_q():
    cands = make_candidates([(1.0, 0.0), (2.0, 1.0)])
    out = add_wire(cands, 1.0, 0.0)
    assert qc(out) == [(1.0, 0.0), (1.0, 1.0)][:1]  # second became dominated


def test_resistance_can_create_dominance():
    """High-c candidates lose q faster and may fall off the list."""
    cands = make_candidates([(0.0, 0.0), (0.5, 1.0), (0.9, 2.0)])
    out = add_wire(cands, 1.0, 0.0)
    # q': 0.0, -0.5, -1.1 -> only the first survives.
    assert qc(out) == [(0.0, 0.0)]


def test_order_preserved_when_spacing_wide():
    cands = make_candidates([(0.0, 0.0), (10.0, 1.0), (20.0, 2.0)])
    out = add_wire(cands, 1.0, 2.0)
    assert len(out) == 3
    assert is_nonredundant(out)


def test_mutates_in_place():
    cands = make_candidates([(10.0, 2.0)])
    original = cands[0]
    add_wire(cands, 1.0, 1.0)
    assert original.c == 3.0  # same object updated


def test_decision_unchanged():
    cands = make_candidates([(10.0, 2.0)])
    decision = cands[0].decision
    out = add_wire(cands, 1.0, 1.0)
    assert out[0].decision is decision


def test_sequential_wires_compose():
    """Two wires in sequence equal one wire only in the lumped sense;
    check against direct formula composition."""
    cands_a = make_candidates([(10.0, 2.0)])
    out = add_wire(add_wire(cands_a, 1.0, 2.0), 3.0, 4.0)
    q1 = 10.0 - 1.0 * (1.0 + 2.0)          # after wire 1
    c1 = 4.0
    q2 = q1 - 3.0 * (2.0 + c1)              # after wire 2
    assert qc(out) == [(q2, 10.0 - 2.0)]


def test_output_nonredundant_on_adversarial_input():
    cands = make_candidates([(0.0, 0.0), (0.2, 1.0), (0.5, 2.0), (3.0, 3.0)])
    out = add_wire(cands, 0.7, 0.3)
    assert is_nonredundant(out)
