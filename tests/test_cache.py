"""ResultCache tests: LRU order, TTL expiry, exact counters, thread safety."""

import threading

import pytest

from repro.service.cache import ResultCache


class FakeClock:
    """A manually-advanced monotonic clock so TTL tests never sleep."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLRU:
    def test_get_put_round_trip(self):
        cache = ResultCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1

    def test_eviction_drops_least_recently_used(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touch "a": "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_put_refreshes_recency_and_value(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not a second entry
        assert len(cache) == 2
        cache.put("c", 3)  # evicts "b", the stale one
        assert "b" not in cache and cache.get("a") == 10

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0)

    def test_values_snapshot(self):
        cache = ResultCache(maxsize=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert sorted(cache.values()) == [1, 2]


class TestTTL:
    def test_entries_expire_on_get(self):
        clock = FakeClock()
        cache = ResultCache(maxsize=4, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.size == 0

    def test_put_purges_expired_entries(self):
        clock = FakeClock()
        cache = ResultCache(maxsize=4, ttl=5.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        clock.advance(6.0)
        cache.put("c", 3)
        assert len(cache) == 1
        assert cache.stats().expirations == 2

    def test_refresh_restarts_the_clock(self):
        clock = FakeClock()
        cache = ResultCache(maxsize=4, ttl=5.0, clock=clock)
        cache.put("a", 1)
        clock.advance(4.0)
        cache.put("a", 1)  # re-insert: new stamp
        clock.advance(4.0)
        assert cache.get("a") == 1

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = ResultCache(maxsize=4, clock=clock)
        cache.put("a", 1)
        clock.advance(10**9)
        assert cache.get("a") == 1
        assert cache.stats().expirations == 0


class TestCounters:
    def test_counters_are_exact(self):
        cache = ResultCache(maxsize=2)
        for key in ("a", "b", "c"):  # "a" evicted by "c"
            cache.put(key, key)
        assert cache.get("a") is None  # miss
        assert cache.get("b") == "b"  # hit
        assert cache.get("c") == "c"  # hit
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (2, 1, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.size == 2 and stats.maxsize == 2

    def test_as_dict_is_json_ready(self):
        import json

        payload = ResultCache(maxsize=2).stats().as_dict()
        json.dumps(payload)
        assert payload["hits"] == 0 and payload["maxsize"] == 2

    def test_clear_keeps_counter_totals(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        stats = cache.stats()
        assert stats.size == 0 and stats.hits == 1


class TestConcurrency:
    def test_hammering_threads_keep_counters_consistent(self):
        cache = ResultCache(maxsize=8)
        lookups_per_thread = 2000
        threads = 8
        errors = []

        def worker(thread_id: int) -> None:
            try:
                for i in range(lookups_per_thread):
                    key = (thread_id * i) % 16
                    if cache.get(key) is None:
                        cache.put(key, key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=worker, args=(t,))
                for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert not errors
        stats = cache.stats()
        # Every get() counted exactly once, whatever the interleaving.
        assert stats.hits + stats.misses == threads * lookups_per_thread
        assert stats.size <= 8
