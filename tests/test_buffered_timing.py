"""Buffered-tree timing-oracle tests (hand-computed stage delays)."""

import pytest

from repro import BufferType, Driver, RoutingTree, evaluate_assignment, evaluate_slack
from repro.errors import TimingError
from repro.units import fF, ps


@pytest.fixture
def chain():
    """src --(R1=10,C1=2f)--> v1 --(R2=20,C2=4f)--> sink(6f, rat=1000ps)."""
    tree = RoutingTree.with_source(driver=Driver(resistance=100.0))
    v1 = tree.add_internal(0, 10.0, fF(2.0))
    tree.add_sink(v1, 20.0, fF(4.0), capacitance=fF(6.0), required_arrival=ps(1000.0))
    return tree


@pytest.fixture
def buffer_type():
    return BufferType("B", driving_resistance=50.0, input_capacitance=fF(3.0),
                      intrinsic_delay=ps(7.0))


def test_unbuffered_matches_elmore(chain):
    from repro import elmore_delays, unbuffered_slack

    report = evaluate_assignment(chain)
    assert report.slack == pytest.approx(unbuffered_slack(chain))
    sink_id = chain.sinks()[0].node_id
    assert report.sink_delays[sink_id] == pytest.approx(
        elmore_delays(chain)[sink_id]
    )


def test_buffered_chain_hand_computed(chain, buffer_type):
    """Buffer at v1: driver sees wire1 + Cb; buffer drives wire2 + load."""
    sink_id = chain.sinks()[0].node_id
    report = evaluate_assignment(chain, {1: buffer_type})

    downstream_of_buffer = fF(4.0) + fF(6.0)
    expected = (
        100.0 * (fF(2.0) + fF(3.0))                     # driver: wire1 + Cb
        + 10.0 * (fF(1.0) + fF(3.0))                     # wire1 pi-delay into Cb
        + ps(7.0) + 50.0 * downstream_of_buffer          # buffer delay
        + 20.0 * (fF(2.0) + fF(6.0))                     # wire2 into load
    )
    assert report.sink_delays[sink_id] == pytest.approx(expected)
    assert report.slack == pytest.approx(ps(1000.0) - expected)


def test_driver_load_reflects_buffer_shielding(chain, buffer_type):
    unbuffered = evaluate_assignment(chain)
    buffered = evaluate_assignment(chain, {1: buffer_type})
    assert unbuffered.driver_load == pytest.approx(fF(2.0 + 4.0 + 6.0))
    assert buffered.driver_load == pytest.approx(fF(2.0 + 3.0))


def test_report_counts_buffers_and_cost(chain, buffer_type):
    report = evaluate_assignment(chain, {1: buffer_type})
    assert report.num_buffers == 1
    assert report.total_buffer_cost == buffer_type.cost


def test_rejects_buffer_on_non_position(chain, buffer_type):
    sink_id = chain.sinks()[0].node_id
    with pytest.raises(TimingError):
        evaluate_assignment(chain, {sink_id: buffer_type})


def test_rejects_disallowed_type():
    tree = RoutingTree.with_source()
    v = tree.add_internal(0, 1.0, fF(1.0), allowed_buffers=["other"])
    tree.add_sink(v, 1.0, fF(1.0), capacitance=fF(2.0), required_arrival=0.0)
    buf = BufferType("mine", 100.0, fF(1.0), ps(5.0))
    with pytest.raises(TimingError):
        evaluate_assignment(tree, {v: buf})


def test_critical_sink_identified():
    tree = RoutingTree.with_source()
    v = tree.add_internal(0, 10.0, fF(2.0), buffer_position=False)
    easy = tree.add_sink(v, 5.0, fF(1.0), capacitance=fF(3.0),
                         required_arrival=ps(500.0))
    tight = tree.add_sink(v, 5.0, fF(1.0), capacitance=fF(3.0),
                          required_arrival=ps(1.0))
    report = evaluate_assignment(tree)
    assert report.critical_sink == tight
    assert report.sink_slacks[tight] < report.sink_slacks[easy]


def test_buffer_shields_downstream_capacitance_from_side_branch():
    """A buffer on one branch speeds up the *other* branch."""
    tree = RoutingTree.with_source(driver=Driver(500.0))
    fork = tree.add_internal(0, 10.0, fF(2.0), buffer_position=False)
    fast_sink = tree.add_sink(fork, 5.0, fF(1.0), capacitance=fF(2.0),
                              required_arrival=ps(1000.0))
    heavy = tree.add_internal(fork, 5.0, fF(1.0))
    tree.add_sink(heavy, 200.0, fF(50.0), capacitance=fF(40.0),
                  required_arrival=ps(1000.0))
    buf = BufferType("B", 100.0, fF(1.0), ps(5.0))

    before = evaluate_assignment(tree).sink_delays[fast_sink]
    after = evaluate_assignment(tree, {heavy: buf}).sink_delays[fast_sink]
    assert after < before


def test_evaluate_slack_shorthand(chain, buffer_type):
    assert evaluate_slack(chain, {1: buffer_type}) == pytest.approx(
        evaluate_assignment(chain, {1: buffer_type}).slack
    )


def test_explicit_driver_overrides_tree(chain, buffer_type):
    weak = evaluate_slack(chain, driver=Driver(10_000.0))
    strong = evaluate_slack(chain, driver=Driver(1.0))
    assert strong > weak


def test_str_report(chain):
    text = str(evaluate_assignment(chain))
    assert "slack" in text and "ps" in text
