"""DP operation-profiling tests."""

import pytest

from repro import Driver, paper_library, two_pin_net
from repro.errors import AlgorithmError
from repro.experiments import profile_operations
from repro.units import fF, ps


@pytest.fixture
def net():
    return two_pin_net(length=20_000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(3000.0), driver=Driver(200.0),
                       num_segments=600)


def test_counts_match_structure(net):
    profile = profile_operations(net, paper_library(4))
    assert profile.wire_calls == net.num_nodes - 1       # one per edge
    assert profile.merge_calls == 0                       # a path net
    assert profile.buffer_calls == net.num_buffer_positions


def test_fractions_sum_to_one(net):
    profile = profile_operations(net, paper_library(4))
    measured = (profile.wire_seconds + profile.merge_seconds +
                profile.buffer_seconds)
    assert measured > 0.0
    assert measured <= profile.total_seconds
    assert 0.0 <= profile.buffer_fraction <= 1.0


def test_unknown_algorithm(net):
    with pytest.raises(AlgorithmError):
        profile_operations(net, paper_library(2), algorithm="magic")


def test_buffer_fraction_higher_for_lillis_at_large_b(net):
    """The baseline's add-buffer share dwarfs the fast algorithm's —
    the very imbalance the paper's Section 3 removes."""
    library = paper_library(32)
    lillis = profile_operations(net, library, algorithm="lillis")
    fast = profile_operations(net, library, algorithm="fast")
    assert lillis.buffer_fraction > fast.buffer_fraction


def test_buffer_fraction_grows_with_b_for_lillis(net):
    """The baseline's add-buffer share rises steeply with b (its O(b k)
    inner loop), while the fast algorithm's stays comparatively flat —
    the imbalance behind the paper's Figure 3."""
    lillis_fractions = []
    fast_fractions = []
    for size in (2, 8, 32):
        library = paper_library(size)
        lillis_fractions.append(
            profile_operations(net, library, algorithm="lillis").buffer_fraction
        )
        fast_fractions.append(
            profile_operations(net, library, algorithm="fast").buffer_fraction
        )
    assert lillis_fractions == sorted(lillis_fractions)
    lillis_growth = lillis_fractions[-1] - lillis_fractions[0]
    fast_growth = fast_fractions[-1] - fast_fractions[0]
    assert lillis_growth > fast_growth


def test_merges_counted_on_branchy_net():
    from repro import balanced_tree_net

    net = balanced_tree_net(3, required_arrival=ps(500.0), driver=Driver(200.0))
    profile = profile_operations(net, paper_library(2))
    # Branching vertices: the root plus levels 1 and 2 (1 + 2 + 4); the
    # level-3 internals feed a single sink each, so they merge nothing.
    assert profile.merge_calls == 7


def test_str_output(net):
    text = str(profile_operations(net, paper_library(2)))
    assert "wire" in text and "buffer" in text and "%" in text
