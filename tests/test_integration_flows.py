"""End-to-end integration flows chaining several subsystems."""

import json

import pytest

from helpers import SLACK_ATOL

from repro import (
    Driver,
    evaluate_assignment,
    insert_buffers,
    insert_buffers_with_inverters,
    mixed_paper_library,
    paper_library,
    prim_steiner_net,
    random_tree_net,
    segment_tree,
    unbuffered_slack,
)
from repro.cost import minimize_cost
from repro.library.clustering import cluster_library
from repro.report import full_report
from repro.timing.slack_map import compute_slack_map
from repro.tree.blockages import Blockage, apply_blockages
from repro.tree.io import (
    library_from_dict,
    library_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.tree.spef import read_spef, write_spef
from repro.units import fF, ps


def test_flow_generate_segment_block_optimize_report():
    """The realistic flow: place, segment, apply macros, optimize,
    verify, report."""
    base = random_tree_net(20, seed=77,
                           required_arrival=(ps(400.0), ps(1500.0)),
                           driver=Driver(220.0))
    segmented = segment_tree(base, 300.0)
    macro = Blockage(2000.0, 2000.0, 6000.0, 6000.0, name="sram")
    restricted, removed = apply_blockages(segmented, [macro])
    assert removed > 0

    library = paper_library(8)
    result = insert_buffers(restricted, library)
    assert result.slack >= unbuffered_slack(restricted) - SLACK_ATOL

    report = evaluate_assignment(restricted, result.assignment)
    assert report.slack == pytest.approx(result.slack, rel=1e-12)

    slack_map = compute_slack_map(restricted, result.assignment)
    assert slack_map.worst_slack == pytest.approx(result.slack, rel=1e-12)

    text = full_report(restricted, result)
    assert "== solution ==" in text


def test_flow_spef_exchange_preserves_optimum(tmp_path):
    """Export to SPEF, re-import, and get the same optimization."""
    net = prim_steiner_net(15, seed=3, required_arrival=ps(1200.0),
                           driver=Driver(250.0))
    library = paper_library(4)
    original = insert_buffers(net, library)

    spef_path = tmp_path / "net.spef"
    write_spef(net, spef_path)
    reloaded = read_spef(spef_path)
    round_tripped = insert_buffers(reloaded, library)
    assert round_tripped.slack == pytest.approx(original.slack,
                                                abs=SLACK_ATOL)


def test_flow_json_library_and_net_exchange(tmp_path):
    net = random_tree_net(10, seed=9, required_arrival=ps(900.0),
                          driver=Driver(150.0))
    library = mixed_paper_library(6, jitter=0.05, seed=1)

    net_doc = json.dumps(tree_to_dict(net))
    lib_doc = json.dumps(library_to_dict(library))
    net2 = tree_from_dict(json.loads(net_doc))
    library2 = library_from_dict(json.loads(lib_doc))
    assert library2 == library

    a = insert_buffers_with_inverters(net, library)
    b = insert_buffers_with_inverters(net2, library2)
    assert a.slack == pytest.approx(b.slack, abs=SLACK_ATOL)


def test_flow_cluster_then_budget():
    """The pre-2005 flow: shrink the library, then trade slack for cost."""
    net = segment_tree(
        random_tree_net(12, seed=21, required_arrival=(ps(500.0), ps(1200.0)),
                        driver=Driver(200.0)),
        400.0,
    )
    full = paper_library(32, jitter=0.05, seed=5)
    reduced = cluster_library(full, 8, seed=0)

    best_full = insert_buffers(net, full)
    best_reduced = insert_buffers(net, reduced)
    assert best_reduced.slack <= best_full.slack + SLACK_ATOL

    # Budgeted: reach 90% of the reduced-library optimum as cheaply as
    # possible, then confirm the budget solution re-measures.
    base = unbuffered_slack(net)
    target = base + 0.9 * (best_reduced.slack - base)
    budgeted = minimize_cost(net, reduced, slack_target=target)
    assert budgeted.cost <= best_reduced.num_buffers
    assert evaluate_assignment(net, budgeted.assignment).slack == pytest.approx(
        budgeted.slack, rel=1e-12
    )


def test_flow_paper_pseudocode_on_chain_equals_default():
    """2-pin flow where the paper-literal mode is exact: segment a long
    wire, run both modes, expect identical slacks and assignments."""
    from repro import two_pin_net

    net = two_pin_net(length=20_000.0, sink_capacitance=fF(15.0),
                      required_arrival=ps(3000.0), driver=Driver(200.0),
                      num_segments=60)
    library = paper_library(16)
    default = insert_buffers(net, library)
    paper_mode = insert_buffers(net, library, destructive_pruning=True)
    assert paper_mode.slack == pytest.approx(default.slack, abs=SLACK_ATOL)
    assert paper_mode.assignment.keys() == default.assignment.keys()


def test_flow_mixed_polarity_industrial_like():
    net = segment_tree(
        random_tree_net(16, seed=31, required_arrival=(ps(500.0), ps(1500.0)),
                        driver=Driver(220.0)),
        500.0,
    )
    # Flip some sinks to negative deterministically.
    for i, sink in enumerate(net.sinks()):
        if i % 3 == 0:
            sink.polarity = -1
    library = mixed_paper_library(10, inverter_fraction=0.4, jitter=0.03,
                                  seed=2)
    result = insert_buffers_with_inverters(net, library)
    from repro import verify_polarities

    assert verify_polarities(net, result.assignment)
    report = evaluate_assignment(net, result.assignment)
    assert report.slack == pytest.approx(result.slack, rel=1e-12)
