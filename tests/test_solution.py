"""BufferingResult / DPStats object tests."""

import pytest

from repro import insert_buffers


def test_result_immutable(line_net, small_library):
    result = insert_buffers(line_net, small_library)
    with pytest.raises(AttributeError):
        result.slack = 0.0


def test_buffer_counts_by_type_sums(line_net, small_library):
    result = insert_buffers(line_net, small_library)
    counts = result.buffer_counts_by_type()
    assert sum(counts.values()) == result.num_buffers
    for name in counts:
        assert name in {b.name for b in small_library}


def test_driver_load_matches_oracle(line_net, small_library):
    result = insert_buffers(line_net, small_library)
    report = result.verify(line_net)
    assert report.driver_load == pytest.approx(result.driver_load, rel=1e-12)


def test_stats_runtime_nonnegative(line_net, small_library):
    result = insert_buffers(line_net, small_library)
    assert result.stats.runtime_seconds >= 0.0


def test_verify_accepts_driver_override(line_net, small_library):
    from repro import Driver

    result = insert_buffers(line_net, small_library, driver=Driver(123.0))
    report = result.verify(line_net, driver=Driver(123.0))
    assert report.slack == pytest.approx(result.slack, rel=1e-12)
