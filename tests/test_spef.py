"""SPEF-subset writer/reader tests."""

import pytest

from helpers import SLACK_ATOL

from repro import (
    Driver,
    insert_buffers,
    paper_library,
    random_tree_net,
    two_pin_net,
    unbuffered_slack,
)
from repro.errors import TreeError
from repro.tree.spef import read_spef, write_spef
from repro.units import fF, ps


@pytest.fixture
def net():
    return random_tree_net(10, seed=12, required_arrival=(ps(200.0), ps(900.0)),
                           driver=Driver(300.0))


def test_round_trip_counts(tmp_path, net):
    path = tmp_path / "net.spef"
    write_spef(net, path)
    copy = read_spef(path)
    assert copy.num_nodes == net.num_nodes
    assert copy.num_sinks == net.num_sinks
    assert copy.num_buffer_positions == net.num_buffer_positions


def test_round_trip_unbuffered_timing(tmp_path, net):
    path = tmp_path / "net.spef"
    write_spef(net, path)
    copy = read_spef(path)
    assert unbuffered_slack(copy) == pytest.approx(
        unbuffered_slack(net), rel=1e-12
    )


def test_round_trip_optimal_slack(tmp_path, net):
    path = tmp_path / "net.spef"
    write_spef(net, path)
    copy = read_spef(path)
    library = paper_library(4)
    assert insert_buffers(copy, library).slack == pytest.approx(
        insert_buffers(net, library).slack, abs=SLACK_ATOL
    )


def test_round_trip_driver_and_rats(tmp_path, net):
    path = tmp_path / "net.spef"
    write_spef(net, path)
    copy = read_spef(path)
    assert copy.driver == net.driver
    original = sorted(s.required_arrival for s in net.sinks())
    restored = sorted(s.required_arrival for s in copy.sinks())
    assert restored == pytest.approx(original)


def test_round_trip_polarity(tmp_path):
    from repro import RoutingTree

    net = RoutingTree.with_source(driver=Driver(100.0))
    v = net.add_internal(0, 10.0, fF(3.0))
    net.add_sink(v, 10.0, fF(3.0), capacitance=fF(5.0),
                 required_arrival=ps(100.0), polarity=-1, name="neg")
    path = tmp_path / "net.spef"
    write_spef(net, path)
    copy = read_spef(path)
    assert copy.sinks()[0].polarity == -1


def test_steiner_vs_insertable_preserved(tmp_path):
    from repro import RoutingTree

    net = RoutingTree.with_source()
    steiner = net.add_internal(0, 10.0, fF(3.0), buffer_position=False)
    pos = net.add_internal(steiner, 10.0, fF(3.0), buffer_position=True)
    net.add_sink(pos, 10.0, fF(3.0), capacitance=fF(5.0), required_arrival=0.0)
    path = tmp_path / "net.spef"
    write_spef(net, path)
    copy = read_spef(path)
    assert copy.num_buffer_positions == 1


def test_file_is_standardish_spef(tmp_path, net):
    path = tmp_path / "net.spef"
    write_spef(net, path)
    text = path.read_text()
    for token in ("*SPEF", "*D_NET", "*CONN", "*CAP", "*RES", "*END"):
        assert token in text
    assert "*P driver O" in text


def test_reader_rejects_unknown_directive(tmp_path):
    path = tmp_path / "bad.spef"
    path.write_text("*SPEF \"x\"\n*MAGIC 1\n")
    with pytest.raises(TreeError):
        read_spef(path)


def test_reader_rejects_empty(tmp_path):
    path = tmp_path / "empty.spef"
    path.write_text("*SPEF \"x\"\n")
    with pytest.raises(TreeError):
        read_spef(path)


def test_reader_rejects_double_driver(tmp_path):
    path = tmp_path / "cycle.spef"
    path.write_text("\n".join([
        '*SPEF "x"',
        "*D_NET net0 1.0",
        "*CONN",
        "*P driver O",
        "*I sinkA I *L 1e-15",
        "*RES",
        "1 driver sinkA 10.0",
        "2 driver sinkA 10.0",
        "*END",
    ]))
    with pytest.raises(TreeError):
        read_spef(path)


def test_two_pin_round_trip(tmp_path):
    net = two_pin_net(length=2000.0, sink_capacitance=fF(7.0),
                      required_arrival=ps(300.0), driver=Driver(150.0),
                      num_segments=4)
    path = tmp_path / "line.spef"
    write_spef(net, path)
    copy = read_spef(path)
    assert copy.num_buffer_positions == 3
    assert unbuffered_slack(copy) == pytest.approx(unbuffered_slack(net))
