"""Structure-of-arrays backend: exact parity with the object backend.

The acceptance bar is *bit identity*, not approximate equality: the SoA
backend performs the same IEEE-754 operations in the same order, so
slack, driver load and the full buffer assignment must compare equal
with ``==`` on every instance.
"""

import pytest

from helpers import random_small_tree

from repro import (
    Driver,
    insert_buffers,
    paper_library,
    two_pin_net,
    uniform_random_library,
)
from repro.core.stores import (
    get_store_backend,
    register_store_backend,
    store_backend_names,
    unregister_store_backend,
)
from repro.core.stores.base import StoreFactory
from repro.errors import AlgorithmError
from repro.units import fF, ps

numpy = pytest.importorskip("numpy")


def assert_identical(a, b):
    assert a.slack == b.slack  # exact: same bits
    assert a.driver_load == b.driver_load
    assert a.assignment == b.assignment


@pytest.mark.parametrize("algorithm", ["fast", "lillis"])
@pytest.mark.parametrize("seed", range(25))
def test_soa_parity_on_random_trees(algorithm, seed):
    tree = random_small_tree(seed)
    library = uniform_random_library(5, seed=seed + 1000)
    obj = insert_buffers(tree, library, algorithm=algorithm, backend="object")
    soa = insert_buffers(tree, library, algorithm=algorithm, backend="soa")
    assert_identical(obj, soa)
    assert soa.stats.backend == "soa"
    assert obj.stats.backend == "object"


@pytest.mark.parametrize("destructive", [False, True])
def test_soa_parity_on_line_net(destructive):
    tree = two_pin_net(length=8000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(900.0), driver=Driver(200.0),
                       num_segments=64)
    library = paper_library(8)
    obj = insert_buffers(tree, library, destructive_pruning=destructive,
                          backend="object")
    soa = insert_buffers(tree, library, destructive_pruning=destructive,
                         backend="soa")
    assert_identical(obj, soa)


def test_soa_parity_van_ginneken(line_net):
    library = paper_library(1)
    obj = insert_buffers(line_net, library, algorithm="van_ginneken",
                          backend="object")
    soa = insert_buffers(line_net, library, algorithm="van_ginneken",
                         backend="soa")
    assert_identical(obj, soa)
    assert soa.stats.algorithm == "van_ginneken"


def test_soa_parity_with_load_limits(line_net):
    """max_load buffers take the prefix-scan path; must still agree."""
    from repro import BufferLibrary, BufferType

    library = BufferLibrary([
        BufferType("capped", 800.0, fF(4.0), ps(25.0), max_load=fF(60.0)),
        BufferType("open", 1500.0, fF(2.0), ps(20.0)),
    ])
    obj = insert_buffers(line_net, library, backend="object")
    soa = insert_buffers(line_net, library, backend="soa")
    assert_identical(obj, soa)


def test_soa_parity_with_allowed_buffers(small_library):
    from repro import RoutingTree

    tree = RoutingTree.with_source(driver=Driver(500.0))
    v = tree.add_internal(0, 300.0, fF(40.0), allowed_buffers=["weak"])
    w = tree.add_internal(v, 200.0, fF(30.0))
    tree.add_sink(w, 300.0, fF(40.0), capacitance=fF(30.0),
                  required_arrival=ps(500.0))
    obj = insert_buffers(tree, small_library, backend="object")
    soa = insert_buffers(tree, small_library, backend="soa")
    assert_identical(obj, soa)


def test_soa_stats_match_object(line_net, paper_lib8):
    obj = insert_buffers(line_net, paper_lib8, backend="object")
    soa = insert_buffers(line_net, paper_lib8, backend="soa")
    assert obj.stats.peak_list_length == soa.stats.peak_list_length
    assert obj.stats.candidates_generated == soa.stats.candidates_generated
    assert obj.stats.root_candidates == soa.stats.root_candidates


def test_vectorized_paths_match_scalar_on_long_lists():
    """Force list lengths past the scalar cutoffs so the whole-array
    prune/hull code paths execute, and check against the object ops."""
    import random

    from repro.core.candidate import Candidate, SinkDecision
    from repro.core.pruning import convex_prune, prune_dominated
    from repro.core.stores.soa import (
        _hull_indices,
        _nonredundant_indices,
        kernel_cutoff,
    )

    rng = random.Random(7)
    count = 4 * kernel_cutoff() + 17
    raw = sorted(
        (rng.uniform(0.0, 1e-12), rng.uniform(-1e-9, 0.0))
        for _ in range(count)
    )
    candidates = [
        Candidate(q=q, c=c, decision=SinkDecision(i))
        for i, (c, q) in enumerate(raw)
    ]
    q = numpy.array([cand.q for cand in candidates])
    c = numpy.array([cand.c for cand in candidates])
    kept = _nonredundant_indices(q, c)
    expected = prune_dominated(list(candidates))
    assert [(q[i], c[i]) for i in kept] == [(x.q, x.c) for x in expected]

    nq = q[kept]
    nc = c[kept]
    if len(nq) > 2:
        hull = _hull_indices(nq, nc)
        expected_hull = convex_prune(expected)
        assert [(nq[i], nc[i]) for i in hull] == [
            (x.q, x.c) for x in expected_hull
        ]


def test_unknown_backend_rejected(line_net, small_library):
    with pytest.raises(AlgorithmError, match="unknown candidate-store"):
        insert_buffers(line_net, small_library, backend="warp_drive")


def test_backend_names_and_duplicate_registration():
    assert {"object", "soa"} <= set(store_backend_names())
    with pytest.raises(AlgorithmError, match="already registered"):

        @register_store_backend("object")
        class Impostor(StoreFactory):
            def sink(self, node_id, q, c):
                raise NotImplementedError

    class Custom(StoreFactory):
        def sink(self, node_id, q, c):
            raise NotImplementedError

    register_store_backend("custom_for_test")(Custom)
    try:
        assert get_store_backend("custom_for_test") is Custom
    finally:
        unregister_store_backend("custom_for_test")
    assert "custom_for_test" not in store_backend_names()


def test_instrumentation_hooks_require_object_backend(line_net, paper_lib8):
    from repro.core.dp import run_dynamic_program

    with pytest.raises(AlgorithmError, match="backend='object'"):
        run_dynamic_program(
            line_net, paper_lib8, lambda store, plan: store,
            algorithm="hooked", add_wire=lambda lst, r, c: lst,
            backend="soa",
        )
