"""End-to-end serving-layer tests.

A real :class:`~repro.service.server.BufferServer` on an ephemeral port
(``port=0``), driven through the real
:class:`~repro.service.client.ServiceClient` over real sockets.  The
headline assertion is the caching contract: a repeated ``/solve``
request is answered from cache — the hit counter moves, the
worker-dispatch counter does not — with a solution bit-identical to the
in-process :func:`repro.core.api.insert_buffers` result.
"""

import asyncio
import threading

import pytest

from helpers import SLACK_ATOL, random_small_tree, relabeled
from repro import Driver, insert_buffers, paper_library, random_tree_net
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import BufferServer
from repro.timing.buffered import evaluate_assignment
from repro.tree.io import tree_to_dict
from repro.units import ps


class ServerHarness:
    """A BufferServer running on a daemon thread's event loop."""

    def __init__(self, **kwargs) -> None:
        self.server = BufferServer(port=0, **kwargs)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(10), "server did not start"
        self.client = ServiceClient(port=self.server.port, timeout=30.0)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()

    def shutdown(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture()
def harness():
    h = ServerHarness(jobs=1, cache_size=64)
    try:
        yield h
    finally:
        h.shutdown()


@pytest.fixture()
def net():
    return random_tree_net(
        8, seed=11, required_arrival=(ps(500.0), ps(2000.0)),
        driver=Driver(resistance=200.0),
    )


@pytest.fixture()
def library():
    return paper_library(4)


class TestEndpoints:
    def test_healthz(self, harness):
        import repro

        answer = harness.client.healthz()
        assert answer["status"] == "ok"
        assert answer["version"] == repro.__version__
        assert answer["jobs"] == 1

    def test_unknown_path_is_404(self, harness):
        with pytest.raises(ServiceError, match="404"):
            harness.client._request("GET", "/nope")

    def test_wrong_method_is_405(self, harness):
        with pytest.raises(ServiceError, match="405"):
            harness.client._request("GET", "/solve")

    def test_bad_json_is_400(self, harness):
        import http.client
        import json

        connection = http.client.HTTPConnection(
            harness.client.host, harness.client.port, timeout=10.0)
        connection.request("POST", "/solve", body="{not json",
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        payload = json.loads(response.read())
        connection.close()
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_unknown_algorithm_is_400(self, harness, net, library):
        with pytest.raises(ServiceError, match="unknown algorithm"):
            harness.client.solve(net, library, algorithm="nope")

    def test_invalid_net_is_400(self, harness, library):
        with pytest.raises(ServiceError, match="invalid net"):
            harness.client.solve({"format_version": 99}, library)

    def test_empty_batch_is_400(self, harness, library):
        with pytest.raises(ServiceError, match="at least one"):
            harness.client.solve_batch([], library)


class TestSolveAndCache:
    def test_solve_matches_in_process_bit_for_bit(self, harness, net, library):
        expected = insert_buffers(net, library)
        answer = harness.client.solve(net, library)
        assert answer["cached"] is False
        assert answer["slack_seconds"] == expected.slack  # bit-identical
        assert answer["driver_load_farads"] == expected.driver_load
        assert answer["num_buffers"] == expected.num_buffers
        assert answer["assignment"] == {
            str(node_id): buffer.name
            for node_id, buffer in expected.assignment.items()
        }

    def test_repeat_request_is_served_from_cache(self, harness, net, library):
        first = harness.client.solve(net, library)
        before = harness.client.stats()
        second = harness.client.solve(net, library)
        after = harness.client.stats()

        assert second["cached"] is True
        # Bit-identical answer (the identical JSON text, in fact).
        for field in ("slack_seconds", "driver_load_farads", "assignment",
                      "key", "num_buffers"):
            assert second[field] == first[field]
        # The hit registered and no new work reached the pool.
        assert (after["cache"]["hits"] == before["cache"]["hits"] + 1)
        assert (after["counters"]["worker_dispatches"]
                == before["counters"]["worker_dispatches"])
        assert (after["counters"]["nets_solved"]
                == before["counters"]["nets_solved"])

    def test_renamed_reordered_net_hits_the_same_entry(self, harness, net, library):
        first = harness.client.solve(net, library)
        twin = relabeled(net, rename=True, reverse_children=True)
        answer = harness.client.solve(twin, library)
        assert answer["cached"] is True
        assert answer["key"] == first["key"]
        assert answer["slack_seconds"] == first["slack_seconds"]
        # The assignment is expressed in the twin's node ids and is a
        # valid optimal buffering of the twin per the timing oracle.
        assignment = {
            int(node_id): library.get(name)
            for node_id, name in answer["assignment"].items()
        }
        report = evaluate_assignment(twin, assignment)
        assert report.slack == pytest.approx(
            first["slack_seconds"], abs=SLACK_ATOL)

    def test_distinct_requests_do_not_collide(self, harness, net, library):
        harness.client.solve(net, library)
        other = harness.client.solve(net, library, algorithm="lillis")
        assert other["cached"] is False
        assert other["algorithm"] == "lillis"
        richer = harness.client.solve(net, paper_library(6))
        assert richer["cached"] is False

    def test_same_structure_different_driver_is_solved_fresh(
        self, harness, net, library
    ):
        # Regression: the compiled-net cache must key on the driver too.
        # A CompiledNet embeds the driver recorded at compile time, so
        # reusing one across drivers would answer with the *old*
        # driver's slack (and poison the new request's cache entry).
        first = harness.client.solve(net, library)
        weak = tree_to_dict(net)
        weak["driver"]["resistance"] = 9000.0
        answer = harness.client.solve(weak, library)
        assert answer["cached"] is False
        from repro.tree.io import tree_from_dict

        expected = insert_buffers(tree_from_dict(weak), library)
        assert answer["slack_seconds"] == expected.slack
        assert answer["slack_seconds"] != first["slack_seconds"]

    def test_solve_accepts_plain_dict_payloads(self, harness, net, library):
        answer = harness.client.solve(tree_to_dict(net), library)
        assert answer["num_buffers"] >= 1


class TestBatch:
    def test_batch_solves_in_order_and_dedupes(self, harness, library):
        nets = [random_small_tree(seed) for seed in (1, 2, 3)]
        expected = [insert_buffers(tree, library) for tree in nets]
        # Duplicate net 0: within one batch it must be solved once.
        answers = harness.client.solve_batch(
            [nets[0], nets[1], nets[2], nets[0]], library)
        assert [a["slack_seconds"] for a in answers] == [
            expected[0].slack, expected[1].slack, expected[2].slack,
            expected[0].slack,
        ]
        stats = harness.client.stats()
        assert stats["counters"]["nets_solved"] == 3
        assert stats["counters"]["worker_dispatches"] == 1

    def test_batch_mixes_hits_and_misses(self, harness, library):
        nets = [random_small_tree(seed) for seed in (4, 5)]
        harness.client.solve(nets[0], library)
        answers = harness.client.solve_batch(nets, library)
        assert [a["cached"] for a in answers] == [True, False]
        again = harness.client.solve_batch(nets, library)
        assert [a["cached"] for a in again] == [True, True]


class TestStats:
    def test_stats_shape(self, harness, net, library):
        harness.client.solve(net, library)
        from repro.core.stores import resolve_backend

        stats = harness.client.stats()
        assert stats["counters"]["solve_requests"] == 1
        assert stats["cache"]["size"] == 1
        assert stats["compiled_cache"]["size"] == 1
        assert stats["compiled_cache"]["payload_bytes"] > 0
        assert stats["pools"] == [{
            "algorithm": "fast",
            "backend": resolve_backend("auto"),
            "policy": "static",
            "jobs": 1,
            "library_size": 4,
            "in_flight": 0,
        }]

    def test_stats_kernel_health(self, harness, net, library):
        """Scratch-arena/tape health and per-backend solve counters."""
        from repro.core.stores import resolve_backend

        backend = resolve_backend("auto")
        harness.client.solve(net, library)
        harness.client.solve(net, library)  # cache hit: no new solve
        stats = harness.client.stats()
        assert stats["solves_by_backend"] == {backend: 1}
        if backend == "soa":
            kernels = stats["kernels"]["soa"]
            assert kernels["solves"] == 1
            assert kernels["factories"] == 1
            assert kernels["arena_pooled_bytes"] >= 0
            assert kernels["tape_capacity"] >= 0

    def test_stats_batch_axis_block(self, harness, library):
        """A multi-corner /batch forms one lane group, visible in
        /stats, and every lane's answer matches the in-process solve."""
        from repro.core.stores import resolve_backend
        from repro.experiments.workloads import corner_variants

        tree = random_small_tree(7)
        nets = [variant for _, variant in corner_variants(tree, 4)]
        answers = harness.client.solve_batch(nets, library)
        for net, answer in zip(nets, answers):
            expected = insert_buffers(net, library)
            assert answer["slack_seconds"] == expected.slack

        block = harness.client.stats()["batch_axis"]
        assert set(block) == {
            "pools_enabled", "groups", "lanes_histogram",
            "batched_solves", "scalar_solves", "arena_pooled_bytes",
        }
        if resolve_backend("auto") == "soa":
            assert block["pools_enabled"] == 1
            assert block["groups"] == 1
            assert block["batched_solves"] == 4
            assert block["scalar_solves"] == 0
            assert block["lanes_histogram"] == {"4": 1}


class TestTTLIntegration:
    def test_expired_entry_is_resolved(self, net, library):
        harness = ServerHarness(jobs=1, cache_size=64, cache_ttl=0.05)
        try:
            import time

            harness.client.solve(net, library)
            time.sleep(0.1)
            answer = harness.client.solve(net, library)
            assert answer["cached"] is False
        finally:
            harness.shutdown()


class TestServeEntryPoint:
    def test_cli_serve_validation(self, capsys):
        from repro.cli import main

        assert main(["serve", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err
        assert main(["serve", "--cache-size", "0"]) == 2
        assert "--cache-size" in capsys.readouterr().err
        assert main(["serve", "--cache-ttl", "-1"]) == 2
        assert "--cache-ttl" in capsys.readouterr().err

    def test_serve_function_runs_and_stops(self):
        """The CLI's engine: boot on an ephemeral port, probe, stop."""
        from repro.service.server import serve

        holder = {}
        done = threading.Event()

        def ready(server):
            holder["server"] = server
            holder["loop"] = asyncio.get_event_loop()
            done.set()

        thread = threading.Thread(
            target=lambda: serve(port=0, ready=ready), daemon=True)
        thread.start()
        assert done.wait(10)
        client = ServiceClient(port=holder["server"].port, timeout=10.0)
        assert client.healthz()["status"] == "ok"
        # stop() cancels serve_forever; serve() treats that as a clean
        # shutdown and returns, ending the thread.
        asyncio.run_coroutine_threadsafe(
            holder["server"].stop(), holder["loop"]).result(10)
        thread.join(10)
        assert not thread.is_alive()


class TestSessions:
    """The stateful /session endpoints: the incremental ECO surface."""

    def test_create_edit_resolve_matches_solve(self, harness, net, library):
        session = harness.client.create_session(net, library)
        assert session.info["num_nodes"] == net.num_nodes
        baseline = session.resolve()
        expected = harness.client.solve(net, library)
        assert baseline["slack_seconds"] == expected["slack_seconds"]
        assert baseline["assignment"] == expected["assignment"]
        assert baseline["incremental"]["executed_fraction"] == 1.0

        # Edit one sink, re-solve, and compare against /solve of the
        # identically edited net — bit-identical through the cache-less
        # incremental path.
        sink = net.sinks()[0]
        session.edit({"op": "set_sink_rat", "node": sink.node_id,
                      "required_arrival": sink.required_arrival * 0.75})
        updated = session.resolve()
        import copy

        edited = copy.deepcopy(net)
        edited.set_sink(sink.node_id,
                        required_arrival=sink.required_arrival * 0.75)
        expected = harness.client.solve(edited, library)
        assert updated["slack_seconds"] == expected["slack_seconds"]
        assert updated["assignment"] == expected["assignment"]
        assert updated["incremental"]["executed_fraction"] < 1.0
        session.delete()

    def test_typed_edits_and_created_labels(self, harness, net, library):
        from repro.incremental import AddSink, SetWire

        session = harness.client.create_session(net, library)
        internal = net.children_of(net.root_id)[0]
        answer = session.edit(
            AddSink(parent=internal, edge_resistance=2.0,
                    edge_capacitance=2e-15, capacitance=8e-15,
                    required_arrival=9e-10),
        )
        assert answer["applied"] == 1
        assert len(answer["created"]) == 1
        created = answer["created"][0]
        assert answer["num_nodes"] == net.num_nodes + 1
        # The fresh label addresses the new node in later edits.
        session.edit({"op": "set_sink_rat", "node": created,
                      "required_arrival": 8e-10})
        resolved = session.resolve()
        assert resolved["num_buffers"] >= 0
        edge = net.edge_to(internal)
        session.edit(SetWire(node=internal, resistance=edge.resistance * 2.0,
                             capacitance=edge.capacitance))
        assert session.resolve()["session"] == session.session_id
        session.delete()

    def test_unknown_node_id_is_400(self, harness, net, library):
        session = harness.client.create_session(net, library)
        with pytest.raises(ServiceError, match="unknown node id"):
            session.edit({"op": "set_sink_rat", "node": 10_000,
                          "required_arrival": 1e-9})
        session.delete()

    def test_invalid_edit_is_400(self, harness, net, library):
        session = harness.client.create_session(net, library)
        with pytest.raises(ServiceError, match="unknown edit op"):
            session.edit({"op": "teleport", "node": 1})
        with pytest.raises(ServiceError, match="not a sink"):
            session.edit({"op": "set_sink_rat", "node": net.root_id,
                          "required_arrival": 1e-9})
        session.delete()

    def test_delete_then_use_is_rejected(self, harness, net, library):
        session = harness.client.create_session(net, library)
        assert session.delete()["deleted"] is True
        with pytest.raises(ServiceError, match="unknown or expired"):
            session.resolve()
        with pytest.raises(ServiceError, match="unknown or expired"):
            session.delete()

    def test_session_expiry(self, net, library):
        import time

        harness = ServerHarness(jobs=1, session_ttl=0.05)
        try:
            session = harness.client.create_session(net, library)
            session.resolve()
            time.sleep(0.12)
            with pytest.raises(ServiceError, match="unknown or expired"):
                session.resolve()
            stats = harness.client.stats()
            assert stats["incremental"]["sessions"]["expired"] >= 1
        finally:
            harness.shutdown()

    def test_session_eviction_bound(self, net, library):
        harness = ServerHarness(jobs=1, max_sessions=2)
        try:
            sessions = [
                harness.client.create_session(net, library)
                for _ in range(3)
            ]
            stats = harness.client.stats()["incremental"]["sessions"]
            assert stats["live"] == 2
            assert stats["evicted"] == 1
            with pytest.raises(ServiceError, match="unknown or expired"):
                sessions[0].resolve()  # the LRU one was evicted
        finally:
            harness.shutdown()

    def test_stats_incremental_block(self, harness, net, library):
        session = harness.client.create_session(net, library)
        session.resolve()
        sink = net.sinks()[0]
        session.edit({"op": "set_sink_cap", "node": sink.node_id,
                      "capacitance": sink.capacitance * 1.5})
        session.resolve()
        stats = harness.client.stats()["incremental"]
        cache = stats["frontier_cache"]
        assert cache["entries"] > 0
        assert cache["bytes"] > 0
        assert cache["hits"] + cache["misses"] > 0
        sessions = stats["sessions"]
        assert sessions["live"] == 1
        assert sessions["created"] == 1
        assert sessions["resident_bytes"] > 0
        assert stats["resolves"] == 2
        assert stats["edits"] == 1
        assert 0.0 < stats["last_executed_fraction"] < 1.0
        assert 0.0 < stats["mean_executed_fraction"] <= 1.0
        session.delete()


class TestResilienceServing:
    """Server hardening: deadlines, limits, shedding, integrity, drain."""

    def test_deep_healthz_reports_internals(self, harness, net, library):
        harness.client.solve(net, library)
        shallow = harness.client.healthz()
        assert "workers" not in shallow
        deep = harness.client.healthz(deep=True)
        assert deep["status"] == "ok"
        worker = deep["workers"][0]
        assert worker["pool_created"] in (True, False)
        assert worker["jobs"] == 1
        assert worker["in_flight"] == 0
        assert set(deep["breakers"]) == {"parallel", "batch_axis"}
        admission = deep["admission"]
        assert admission["max_inflight"] == 8
        # The healthz request itself is the one in flight.
        assert admission["in_flight_requests"] == 1
        pressure = deep["cache_pressure"]
        assert pressure["results_size"] == 1
        assert pressure["integrity_failures"] == 0

    def test_deadline_ms_maps_to_504(self, harness, library):
        big = random_tree_net(
            64, seed=3, required_arrival=(ps(500.0), ps(2000.0)),
            driver=Driver(resistance=200.0),
        )
        with pytest.raises(ServiceError, match="504") as info:
            harness.client.solve(big, paper_library(8), deadline_ms=1e-4)
        assert "deadline" in str(info.value)
        stats = harness.client.stats()
        assert stats["resilience"]["server"]["deadline_hits"] == 1

    def test_invalid_deadline_ms_is_400(self, harness, net, library):
        with pytest.raises(ServiceError, match="400"):
            harness.client.solve(net, library, deadline_ms=-5)
        with pytest.raises(ServiceError, match="400"):
            harness.client.solve(net, library, deadline_ms="soon")

    def test_generous_deadline_is_bit_identical(self, harness, net, library):
        expected = insert_buffers(net, library)
        answer = harness.client.solve(net, library, deadline_ms=300_000)
        assert answer["slack_seconds"] == expected.slack

    def test_oversized_request_is_413(self, net, library):
        h = ServerHarness(jobs=1, max_request_bytes=200)
        try:
            with pytest.raises(ServiceError, match="413") as info:
                h.client.solve(net, library)
            assert "too large" in str(info.value)
        finally:
            h.shutdown()

    def test_too_many_positions_is_422(self, net, library):
        h = ServerHarness(jobs=1, max_positions=2)
        try:
            with pytest.raises(ServiceError, match="422") as info:
                h.client.solve(net, library)
            assert "buffer positions" in str(info.value)
            stats = h.client.stats()
            assert stats["resilience"]["server"]["rejected_payloads"] == 1
        finally:
            h.shutdown()

    def test_overload_sheds_with_503(self, library):
        h = ServerHarness(jobs=1, max_inflight=1, max_queue_depth=0)
        try:
            big = random_tree_net(
                900, seed=5, required_arrival=(ps(500.0), ps(2000.0)),
                driver=Driver(resistance=200.0),
            )
            lib8 = paper_library(8)
            results = []

            def worker():
                try:
                    h.client.solve(big, lib8)
                    results.append(("ok", None))
                except ServiceError as exc:
                    results.append(("err", str(exc)))

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert h.server.counters["sheds"] >= 1
            assert any(kind == "ok" for kind, _ in results)
            for kind, message in results:
                if kind == "err":
                    assert "503" in message and "overloaded" in message
        finally:
            h.shutdown()

    def test_corrupted_cache_entry_is_not_served(self, harness, net, library):
        from repro.resilience import (
            FaultPlan, FaultRule, clear_fault_plan, install_fault_plan,
        )

        install_fault_plan(FaultPlan(
            [FaultRule("cache.payload", "corrupt", rate=1.0)], seed=1))
        try:
            first = harness.client.solve(net, library)
            assert first["cached"] is False
            # The stored payload was tampered with after its digest was
            # taken: the repeat must detect the mismatch, drop the
            # entry, and re-solve rather than serve corrupted bits.
            second = harness.client.solve(net, library)
            assert second["cached"] is False
            assert second["slack_seconds"] == first["slack_seconds"]
            assert harness.server.counters["integrity_failures"] >= 1
        finally:
            clear_fault_plan()

    def test_stats_resilience_block(self, harness, net, library):
        harness.client.solve(net, library)
        block = harness.client.stats()["resilience"]
        assert set(block) == {
            "server", "supervisor", "breaker_trips", "breakers",
            "batch_group_fallbacks", "partitioned_fallbacks",
        }
        server = block["server"]
        assert server["sheds"] == 0
        assert server["draining"] is False
        assert server["max_inflight"] == 8
        assert block["supervisor"]["retries"] == 0
        assert block["breakers"]["parallel"]["open"] == 0

    def test_drain_completes_in_flight_and_refuses_new(self, library):
        import time

        h = ServerHarness(jobs=1)
        try:
            big = random_tree_net(
                1200, seed=7, required_arrival=(ps(500.0), ps(2000.0)),
                driver=Driver(resistance=200.0),
            )
            result = {}

            def slow_solve():
                try:
                    result["answer"] = h.client.solve(big, paper_library(8))
                except ServiceError as exc:
                    result["error"] = str(exc)

            # An artificial in-flight token holds the drain window open
            # deterministically — a real solve can finish before the
            # mid-drain probes land.
            def hold():
                h.server._active_requests += 1

            h.loop.call_soon_threadsafe(hold)
            thread = threading.Thread(target=slow_solve)
            thread.start()
            time.sleep(0.15)  # let the solve get admitted
            h.server.request_drain()
            time.sleep(0.05)
            # While draining: no new admissions, healthz says so.
            with pytest.raises(ServiceError, match="draining|503"):
                h.client.healthz()
            with pytest.raises(ServiceError, match="draining|503"):
                h.client.solve(big, library)
            thread.join(60)
            # The already-admitted solve completed during the drain.
            assert "answer" in result, result
            assert result["answer"]["num_buffers"] >= 0

            def release():
                h.server._active_requests -= 1

            h.loop.call_soon_threadsafe(release)
            # After the drain the listening socket is closed outright.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    h.client.healthz()
                except ServiceError:
                    break  # refused / reset: socket is down
                time.sleep(0.05)
            else:
                pytest.fail("server kept answering after drain")
            assert h.server.counters["drains"] == 1
        finally:
            h.loop.call_soon_threadsafe(h.loop.stop)
            h.thread.join(10)
            h.loop.close()


class TestPartitionedServing:
    """Large /solve nets route through the partitioned solver."""

    def test_stats_parallel_block_shape(self, harness, net, library):
        harness.client.solve(net, library)
        block = harness.client.stats()["parallel"]
        assert set(block) == {
            "pools_enabled", "parallel_solves", "fallback_solves",
            "partitions_total", "last",
        }
        # jobs=1 harness: routing is off and nothing was partitioned.
        assert block["pools_enabled"] == 0
        assert block["parallel_solves"] == 0

    def test_large_solve_is_partitioned_and_bit_identical(self, library):
        from repro.tree.segmenting import segment_to_position_count

        big = segment_to_position_count(
            random_tree_net(
                32, seed=13, required_arrival=(ps(500.0), ps(2500.0)),
                driver=Driver(resistance=200.0),
            ),
            2500,
        )
        expected = insert_buffers(big, library)
        h = ServerHarness(jobs=2, cache_size=16, parallel_threshold=500)
        try:
            answer = h.client.solve(big, library)
            assert answer["slack_seconds"] == expected.slack
            assert answer["assignment"] == {
                str(node_id): buffer.name
                for node_id, buffer in expected.assignment.items()
            }
            block = h.client.stats()["parallel"]
            assert block["pools_enabled"] == 1
            assert block["parallel_solves"] == 1
            assert block["partitions_total"] >= 2
            last = block["last"]
            assert last["engaged"] is True
            assert last["partitions"] >= 2
            assert last["workers"] == 2
            assert 0.0 < last["coverage"] <= 1.0
            assert last["residual_fraction"] == 1.0 - last["coverage"]
            assert len(last["cut_depths"]) == last["partitions"]
            assert last["pool_utilization"] > 0.0
        finally:
            h.shutdown()
