"""Property tests: serialization round trips preserve the problem."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import SLACK_ATOL, random_small_tree

from repro import insert_buffers, uniform_random_library, unbuffered_slack
from repro.tree.io import (
    library_from_dict,
    library_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.tree.spef import read_spef, write_spef

seeds = st.integers(min_value=0, max_value=5_000)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds)
def test_json_round_trip_preserves_problem(seed):
    tree = random_small_tree(seed)
    copy = tree_from_dict(tree_to_dict(tree))
    assert copy.num_nodes == tree.num_nodes
    assert abs(unbuffered_slack(copy) - unbuffered_slack(tree)) <= SLACK_ATOL


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds, seeds)
def test_json_round_trip_preserves_optimum(tree_seed, lib_seed):
    tree = random_small_tree(tree_seed)
    library = uniform_random_library(3, seed=lib_seed)
    copy = tree_from_dict(tree_to_dict(tree))
    library_copy = library_from_dict(library_to_dict(library))
    assert library_copy == library
    a = insert_buffers(tree, library)
    b = insert_buffers(copy, library_copy)
    assert abs(a.slack - b.slack) <= SLACK_ATOL


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds, seeds)
def test_spef_round_trip_preserves_optimum(tree_seed, lib_seed):
    import tempfile
    from pathlib import Path

    tree = random_small_tree(tree_seed)
    library = uniform_random_library(3, seed=lib_seed)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "net.spef"
        write_spef(tree, path)
        copy = read_spef(path)
    assert copy.num_buffer_positions == tree.num_buffer_positions
    a = insert_buffers(tree, library)
    b = insert_buffers(copy, library)
    assert abs(a.slack - b.slack) <= SLACK_ATOL
