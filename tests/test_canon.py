"""Canonicalization tests: hash invariance and distinctness.

The contract of :mod:`repro.service.canon`: the key must not move under
anything the solver ignores (names, ids, child order, positions, edge
lengths) and must move under anything electrical (loads, arrivals,
parasitics, flags, polarities, the driver, the library, the request
parameters).  Plus the property the serving cache leans on: canonical
indices translate an assignment between any two trees sharing a key.
"""

import random

import pytest

from helpers import SLACK_ATOL, random_small_tree, relabeled
from repro import Driver, RoutingTree, insert_buffers, paper_library
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.service.cache import SolutionPayload
from repro.service.canon import (
    canonicalize,
    driver_key,
    library_key,
    options_key,
    request_key,
)
from repro.units import fF, ps


def branchy_tree(**overrides) -> RoutingTree:
    """A small two-branch tree with every canonical-relevant knob."""
    spec = {
        "driver_r": 180.0,
        "sink1_c": fF(20.0), "sink1_q": ps(900.0),
        "sink2_c": fF(35.0), "sink2_q": ps(1200.0),
        "edge_r": 40.0, "edge_c": fF(8.0),
        "buffer_position": True,
        "allowed": None,
        "polarity": 1,
    }
    spec.update(overrides)
    tree = RoutingTree.with_source(driver=Driver(spec["driver_r"]))
    branch = tree.add_internal(
        tree.root_id, spec["edge_r"], spec["edge_c"],
        buffer_position=spec["buffer_position"], allowed_buffers=spec["allowed"],
    )
    tree.add_sink(branch, 30.0, fF(5.0), capacitance=spec["sink1_c"],
                  required_arrival=spec["sink1_q"], polarity=spec["polarity"])
    tree.add_sink(branch, 60.0, fF(9.0), capacitance=spec["sink2_c"],
                  required_arrival=spec["sink2_q"])
    return tree




class TestCanonicalInvariance:
    def test_node_renaming_does_not_move_the_key(self):
        tree = branchy_tree()
        assert canonicalize(tree).key == canonicalize(relabeled(tree)).key

    def test_child_reordering_does_not_move_the_key(self):
        tree = branchy_tree()
        shuffled = relabeled(tree, rename=False, reverse_children=True)
        assert canonicalize(tree).key == canonicalize(shuffled).key

    def test_node_id_assignment_does_not_move_the_key(self):
        # Same electrical tree, built in a different attach order, so
        # every node gets different ids.
        a = RoutingTree.with_source(driver=Driver(100.0))
        v = a.add_internal(a.root_id, 10.0, fF(2.0))
        a.add_sink(v, 5.0, fF(1.0), capacitance=fF(10.0), required_arrival=ps(700.0))
        a.add_sink(v, 7.0, fF(3.0), capacitance=fF(12.0), required_arrival=ps(800.0))

        b = RoutingTree.with_source(driver=Driver(100.0))
        w = b.add_internal(b.root_id, 10.0, fF(2.0))
        b.add_sink(w, 7.0, fF(3.0), capacitance=fF(12.0), required_arrival=ps(800.0))
        b.add_sink(w, 5.0, fF(1.0), capacitance=fF(10.0), required_arrival=ps(700.0))
        assert canonicalize(a).key == canonicalize(b).key

    def test_positions_and_edge_lengths_are_cosmetic(self):
        a = RoutingTree.with_source()
        v = a.add_internal(a.root_id, 10.0, fF(2.0), length=100.0,
                           position=(0.0, 0.0))
        a.add_sink(v, 5.0, fF(1.0), capacitance=fF(10.0),
                   required_arrival=ps(700.0), length=50.0, position=(3.0, 4.0))

        b = RoutingTree.with_source()
        w = b.add_internal(b.root_id, 10.0, fF(2.0), length=999.0)
        b.add_sink(w, 5.0, fF(1.0), capacitance=fF(10.0),
                   required_arrival=ps(700.0))
        assert canonicalize(a).key == canonicalize(b).key

    def test_randomized_corpus_is_rename_and_reorder_invariant(self):
        rng = random.Random(20050307)
        for _ in range(20):
            tree = random_small_tree(rng.randrange(10**6))
            twin = relabeled(tree, rename=True, reverse_children=True)
            assert canonicalize(tree).key == canonicalize(twin).key


class TestCanonicalDistinctness:
    @pytest.mark.parametrize("field,value", [
        ("sink1_c", fF(21.0)),
        ("sink1_q", ps(901.0)),
        ("edge_r", 41.0),
        ("edge_c", fF(8.5)),
        ("buffer_position", False),
        ("allowed", ("b0",)),
        ("polarity", -1),
    ])
    def test_electrical_changes_move_the_key(self, field, value):
        base = canonicalize(branchy_tree()).key
        assert canonicalize(branchy_tree(**{field: value})).key != base

    def test_an_ulp_is_enough(self):
        import math

        c = fF(20.0)
        bumped = math.nextafter(c, math.inf)
        assert (canonicalize(branchy_tree(sink1_c=c)).key
                != canonicalize(branchy_tree(sink1_c=bumped)).key)

    def test_subtree_swap_across_different_edges_moves_the_key(self):
        # Same multiset of subtrees and edges, attached differently:
        # sink A behind the long wire vs sink B behind the long wire.
        def build(swap: bool) -> RoutingTree:
            tree = RoutingTree.with_source()
            v = tree.add_internal(tree.root_id, 10.0, fF(2.0))
            edges = [(100.0, fF(30.0)), (5.0, fF(1.0))]
            sinks = [(fF(10.0), ps(700.0)), (fF(50.0), ps(2000.0))]
            if swap:
                edges.reverse()
            for (er, ec), (sc, sq) in zip(edges, sinks):
                tree.add_sink(v, er, ec, capacitance=sc, required_arrival=sq)
            return tree

        assert canonicalize(build(False)).key != canonicalize(build(True)).key


class TestLibraryAndRequestKeys:
    def test_library_key_ignores_order_but_not_content(self):
        buffers = [
            BufferType("a", 100.0, fF(5.0), ps(20.0)),
            BufferType("b", 50.0, fF(9.0), ps(30.0)),
        ]
        assert (library_key(BufferLibrary(buffers))
                == library_key(BufferLibrary(reversed(buffers))))
        tweaked = [
            BufferType("a", 100.0, fF(5.0), ps(20.0)),
            BufferType("b", 50.0, fF(9.0), ps(31.0)),
        ]
        assert (library_key(BufferLibrary(buffers))
                != library_key(BufferLibrary(tweaked)))

    def test_library_key_sees_buffer_names(self):
        a = BufferLibrary([BufferType("a", 100.0, fF(5.0), ps(20.0))])
        b = BufferLibrary([BufferType("b", 100.0, fF(5.0), ps(20.0))])
        assert library_key(a) != library_key(b)

    def test_driver_key_ignores_name_only(self):
        assert (driver_key(Driver(100.0, name="drv1"))
                == driver_key(Driver(100.0, name="drv2")))
        assert driver_key(Driver(100.0)) != driver_key(Driver(101.0))
        assert driver_key(None) != driver_key(Driver(0.0))

    def test_options_key_is_order_independent(self):
        assert (options_key({"a": 1, "b": 2})
                == options_key({"b": 2, "a": 1}))
        assert options_key({}) == options_key(None)
        assert options_key({"a": 1}) != options_key({"a": 2})

    def test_request_key_covers_every_axis(self):
        tree = branchy_tree()
        library = paper_library(4)
        base = request_key(tree, library)
        assert request_key(relabeled(tree), library) == base
        assert request_key(tree, paper_library(8)) != base
        assert request_key(tree, library, algorithm="lillis") != base
        assert request_key(tree, library, backend="object") != base
        assert request_key(
            tree, library, options={"destructive_pruning": True}) != base
        assert request_key(tree, library, driver=Driver(999.0)) != base

    def test_auto_backend_hashes_as_its_resolution(self):
        from repro.core.stores import resolve_backend

        tree = branchy_tree()
        library = paper_library(4)
        assert (request_key(tree, library, backend="auto")
                == request_key(tree, library, backend=resolve_backend("auto")))


class TestIndexMapping:
    def test_indices_are_a_bijection(self):
        tree = random_small_tree(42)
        canon = canonicalize(tree)
        assert sorted(canon.node_of_index) == sorted(
            n.node_id for n in tree.nodes())
        assert all(canon.node_of_index[canon.index_of_node[n]] == n
                   for n in canon.index_of_node)

    def test_payload_translates_between_equivalent_trees(self):
        library = paper_library(4)
        rng = random.Random(77)
        for _ in range(10):
            tree = random_small_tree(rng.randrange(10**6))
            twin = relabeled(tree, rename=True, reverse_children=True)
            result = insert_buffers(tree, library)
            payload = SolutionPayload.encode(result, canonicalize(tree))
            translated = payload.materialize(canonicalize(twin), library)
            assert translated.slack == result.slack
            assert translated.num_buffers == result.num_buffers
            # The translated assignment must be *valid on the twin*: the
            # independent timing oracle reproduces the optimal slack.
            report = translated.verify(twin)
            assert report.slack == pytest.approx(result.slack, abs=SLACK_ATOL)
