"""Unit tests for the cost DP's cross-level pruning internals."""

import pytest

from helpers import make_candidates, qc

from repro.cost.min_cost import _prune_across_levels


def levels_from(points_by_cost):
    return {
        cost: make_candidates(points) for cost, points in points_by_cost.items()
    }


def test_cheaper_dominator_kills_expensive_candidate():
    levels = levels_from({
        0: [(5.0, 2.0)],
        1: [(4.0, 3.0)],  # worse q, higher c than the free candidate
    })
    pruned = _prune_across_levels(levels)
    assert 1 not in pruned
    assert qc(pruned[0]) == [(5.0, 2.0)]


def test_expensive_survivor_with_better_q():
    levels = levels_from({
        0: [(5.0, 2.0)],
        1: [(7.0, 2.5)],  # more slack: must survive despite higher c
    })
    pruned = _prune_across_levels(levels)
    assert qc(pruned[1]) == [(7.0, 2.5)]


def test_expensive_survivor_with_lower_c():
    levels = levels_from({
        0: [(5.0, 2.0)],
        1: [(4.0, 1.0)],  # less slack but lighter: survives
    })
    pruned = _prune_across_levels(levels)
    assert qc(pruned[1]) == [(4.0, 1.0)]


def test_domination_accumulates_across_levels():
    """Level 2 candidates must be checked against levels 0 *and* 1."""
    levels = levels_from({
        0: [(5.0, 2.0)],
        1: [(8.0, 4.0)],
        2: [(7.0, 5.0)],  # dominated by level 1, not by level 0
    })
    pruned = _prune_across_levels(levels)
    assert 2 not in pruned
    assert 0 in pruned and 1 in pruned


def test_equal_point_at_higher_cost_pruned():
    levels = levels_from({
        0: [(5.0, 2.0)],
        3: [(5.0, 2.0)],  # identical but costs more: useless
    })
    pruned = _prune_across_levels(levels)
    assert 3 not in pruned


def test_empty_levels_dropped():
    levels = levels_from({0: [(5.0, 2.0)]})
    levels[1] = []
    pruned = _prune_across_levels(levels)
    assert 1 not in pruned


def test_within_level_lists_preserved_in_order():
    levels = levels_from({
        0: [(1.0, 1.0), (3.0, 4.0)],
        1: [(2.0, 0.5), (4.0, 5.0)],
    })
    pruned = _prune_across_levels(levels)
    assert qc(pruned[0]) == [(1.0, 1.0), (3.0, 4.0)]
    # (2.0, 0.5) beats level 0 on c; (4.0, 5.0) beats it on q.
    assert qc(pruned[1]) == [(2.0, 0.5), (4.0, 5.0)]
