"""Compiled solve schedules: parity, caching, pickling, the arena.

The acceptance bar for the compiled execution layer is the same as the
SoA backend's: *bit identity* with the reference path.  The interpreter
performs the same IEEE-754 operations on the same inputs in dependency
order, so slack, driver load, the full assignment — and even the DP
statistics (peak list length, candidates generated) — must compare
equal with ``==``, never approx.
"""

import pickle

import pytest

from helpers import random_small_tree

from repro import (
    Driver,
    RoutingTree,
    compile_net,
    insert_buffers,
    paper_library,
    solve_many,
    two_pin_net,
    uniform_random_library,
)
from repro.core.schedule import (
    OP_BUFFER,
    OP_FINAL,
    OP_MERGE,
    OP_SINK,
    OP_WIRE,
    CompiledNet,
    auto_compile,
    cached_schedule,
    clear_schedule_cache,
)
from repro.core.stores import resolve_backend
from repro.errors import AlgorithmError
from repro.units import fF, ps

try:
    import numpy
except ImportError:  # pragma: no cover
    numpy = None

BACKENDS = ["object"] + (["soa"] if numpy is not None else [])


def assert_identical(a, b):
    assert a.slack == b.slack  # exact: same bits
    assert a.driver_load == b.driver_load
    assert a.assignment == b.assignment


def assert_same_stats(a, b):
    assert a.stats.peak_list_length == b.stats.peak_list_length
    assert a.stats.candidates_generated == b.stats.candidates_generated
    assert a.stats.root_candidates == b.stats.root_candidates


# ----------------------------------------------------------------------
# Parity: compiled interpreter vs tree walk
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ["fast", "lillis"])
@pytest.mark.parametrize("seed", range(20))
def test_compiled_parity_on_random_trees(algorithm, backend, seed):
    tree = random_small_tree(seed)
    library = uniform_random_library(5, seed=seed + 500)
    with auto_compile(False):
        walk = insert_buffers(tree, library, algorithm=algorithm,
                              backend=backend)
    compiled = compile_net(tree, library)
    result = insert_buffers(compiled, library, algorithm=algorithm,
                            backend=backend)
    assert_identical(walk, result)
    assert_same_stats(walk, result)
    assert result.stats.backend == backend
    # Repeat solves (warm factory/arena) stay identical.
    again = insert_buffers(compiled, library, algorithm=algorithm,
                           backend=backend)
    assert_identical(result, again)
    assert_same_stats(result, again)


@pytest.mark.parametrize("backend", BACKENDS)
def test_compiled_parity_van_ginneken(backend):
    tree = two_pin_net(length=8000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(900.0), driver=Driver(200.0),
                       num_segments=48)
    library = paper_library(1)
    with auto_compile(False):
        walk = insert_buffers(tree, library, algorithm="van_ginneken",
                              backend=backend)
    result = insert_buffers(compile_net(tree, library), library,
                            algorithm="van_ginneken", backend=backend)
    assert_identical(walk, result)
    assert result.stats.algorithm == "van_ginneken"


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("destructive", [False, True])
def test_compiled_parity_destructive_pruning(backend, destructive):
    tree = two_pin_net(length=8000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(900.0), driver=Driver(200.0),
                       num_segments=64)
    library = paper_library(8)
    with auto_compile(False):
        walk = insert_buffers(tree, library, backend=backend,
                              destructive_pruning=destructive)
    result = insert_buffers(compile_net(tree, library), library,
                            backend=backend,
                            destructive_pruning=destructive)
    assert_identical(walk, result)


@pytest.mark.parametrize("backend", BACKENDS)
def test_compiled_parity_with_restricted_and_steiner_nodes(backend):
    """Allowed-buffer subsets, empty subsets and pure Steiner points."""
    library = paper_library(4)
    names = [b.name for b in library.buffers]
    tree = RoutingTree.with_source(driver=Driver(400.0))
    v1 = tree.add_internal(0, 120.0, fF(30.0), allowed_buffers=[names[0]])
    v2 = tree.add_internal(v1, 90.0, fF(20.0), buffer_position=False)
    v3 = tree.add_internal(v2, 90.0, fF(20.0), allowed_buffers=[])
    tree.add_sink(v3, 60.0, fF(10.0), capacitance=fF(15.0),
                  required_arrival=ps(700.0))
    tree.add_sink(v2, 80.0, fF(12.0), capacitance=fF(18.0),
                  required_arrival=ps(900.0))
    with auto_compile(False):
        walk = insert_buffers(tree, library, backend=backend)
    result = insert_buffers(compile_net(tree, library), library,
                            backend=backend)
    assert_identical(walk, result)
    assert_same_stats(walk, result)


def test_compiled_driver_override_and_default():
    tree = random_small_tree(4)
    library = uniform_random_library(4, seed=9)
    compiled = compile_net(tree, library)
    assert compiled.driver == tree.driver
    strong = insert_buffers(compiled, library, driver=Driver(10.0))
    weak = insert_buffers(compiled, library, driver=Driver(5000.0))
    assert strong.slack > weak.slack
    with auto_compile(False):
        default = insert_buffers(tree, library)
    assert insert_buffers(compiled, library).slack == default.slack


# ----------------------------------------------------------------------
# Instruction stream shape
# ----------------------------------------------------------------------


def test_schedule_instruction_counts():
    tree = random_small_tree(11)
    library = paper_library(4)
    compiled = compile_net(tree, library)
    codes = [op & 3 for op in compiled.ops]
    merges = sum(
        len(tree.children_of(n.node_id)) - 1
        for n in tree.nodes() if not n.is_sink
    )
    assert codes.count(OP_SINK) == tree.num_sinks == compiled.num_sinks
    assert codes.count(OP_WIRE) == tree.num_nodes - 1
    assert codes.count(OP_MERGE) == merges
    assert codes.count(OP_BUFFER) == tree.num_buffer_positions
    # Exactly one node-final instruction per vertex.
    finals = sum(1 for op in compiled.ops if op & OP_FINAL)
    assert finals == tree.num_nodes
    assert len(compiled) == len(compiled.ops) == len(compiled.args)


def test_compile_invalid_tree_rejected():
    tree = RoutingTree.with_source()  # no sinks
    with pytest.raises(AlgorithmError, match="invalid routing tree"):
        compile_net(tree, paper_library(2))


def test_compiled_rejects_mismatched_library():
    tree = random_small_tree(0)
    compiled = compile_net(tree, paper_library(4))
    with pytest.raises(AlgorithmError, match="different buffer"):
        insert_buffers(compiled, paper_library(8))


def test_compiled_rejects_list_level_overrides():
    from repro.core.dp import run_dynamic_program

    tree = random_small_tree(1)
    library = paper_library(2)
    compiled = compile_net(tree, library)
    with pytest.raises(AlgorithmError, match="RoutingTree"):
        run_dynamic_program(
            compiled, library, lambda lst, plan: lst, algorithm="hooked",
            add_wire=lambda lst, r, c: lst, backend="object",
        )


# ----------------------------------------------------------------------
# Repeat-solve caching
# ----------------------------------------------------------------------


def test_auto_compile_caches_on_first_solve():
    tree = random_small_tree(7)
    library = uniform_random_library(4, seed=70)
    clear_schedule_cache()
    assert cached_schedule(tree, library) is None
    first = insert_buffers(tree, library)
    compiled = cached_schedule(tree, library)
    assert isinstance(compiled, CompiledNet)
    second = insert_buffers(tree, library)  # interpreter path
    assert_identical(first, second)
    assert_same_stats(first, second)


def test_auto_compile_disabled_does_not_cache():
    tree = random_small_tree(8)
    library = uniform_random_library(4, seed=80)
    clear_schedule_cache()
    with auto_compile(False):
        insert_buffers(tree, library)
        assert cached_schedule(tree, library) is None


def test_cache_invalidated_when_tree_grows():
    tree = random_small_tree(9)
    library = uniform_random_library(4, seed=90)
    before = insert_buffers(tree, library)
    assert cached_schedule(tree, library) is not None
    tree.add_sink(0, 200.0, fF(30.0), capacitance=fF(25.0),
                  required_arrival=ps(100.0))
    assert cached_schedule(tree, library) is None  # stale entry ignored
    after = insert_buffers(tree, library)
    with auto_compile(False):
        fresh = insert_buffers(tree, library)
    assert_identical(after, fresh)
    assert after.slack != before.slack or after.assignment != before.assignment


def test_cache_invalidated_by_sink_mutation():
    """In-place required-arrival edits must not serve stale schedules."""
    tree = two_pin_net(length=8000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(900.0), driver=Driver(200.0),
                       num_segments=32)
    library = paper_library(4)
    before = insert_buffers(tree, library)
    assert cached_schedule(tree, library) is not None
    for node in tree.sinks():
        node.required_arrival = node.required_arrival / 2.0
    assert cached_schedule(tree, library) is None
    after = insert_buffers(tree, library)
    with auto_compile(False):
        fresh = insert_buffers(tree, library)
    assert_identical(after, fresh)
    assert after.slack != before.slack


def test_cache_invalidated_by_driver_mutation():
    tree = random_small_tree(18)
    library = uniform_random_library(4, seed=180)
    insert_buffers(tree, library)
    assert cached_schedule(tree, library) is not None
    tree.driver = Driver(resistance=tree.driver.resistance * 7.0)
    assert cached_schedule(tree, library) is None
    after = insert_buffers(tree, library)
    with auto_compile(False):
        assert_identical(after, insert_buffers(tree, library))


def test_cache_invalidated_by_library_change():
    tree = random_small_tree(10)
    small = uniform_random_library(3, seed=100)
    large = uniform_random_library(6, seed=101)
    insert_buffers(tree, small)
    assert cached_schedule(tree, small) is not None
    assert cached_schedule(tree, large) is None
    result = insert_buffers(tree, large)
    with auto_compile(False):
        assert_identical(result, insert_buffers(tree, large))


# ----------------------------------------------------------------------
# Pickling and batch dispatch
# ----------------------------------------------------------------------


def test_compiled_net_pickle_roundtrip():
    tree = random_small_tree(12)
    library = uniform_random_library(5, seed=120)
    compiled = compile_net(tree, library)
    reference = insert_buffers(compiled, library)
    clone = pickle.loads(pickle.dumps(compiled))
    assert isinstance(clone, CompiledNet)
    assert clone.ops == compiled.ops
    assert clone.num_buffer_positions == compiled.num_buffer_positions
    result = insert_buffers(clone, clone.library)
    assert result.slack == reference.slack
    assert result.assignment == reference.assignment
    # The original keeps working after its clone was pickled away.
    assert insert_buffers(compiled, library).slack == reference.slack


def test_compiled_payload_smaller_than_tree():
    tree = two_pin_net(length=20_000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(2000.0), driver=Driver(200.0),
                       num_segments=200)
    library = paper_library(8)
    compiled = compile_net(tree, library)
    assert len(pickle.dumps(compiled)) < len(pickle.dumps(tree))


def test_solve_many_validates_each_net_exactly_once(monkeypatch):
    trees = [random_small_tree(seed) for seed in range(4)]
    library = paper_library(4)
    calls = []
    original = RoutingTree.validate

    def counting_validate(self):
        calls.append(self)
        return original(self)

    monkeypatch.setattr(RoutingTree, "validate", counting_validate)
    results = solve_many(trees, library, jobs=1)
    assert len(results) == len(trees)
    assert len(calls) == len(trees)


@pytest.mark.parametrize("precompile", [False, True])
def test_solve_many_precompile_parity(precompile):
    trees = [random_small_tree(seed) for seed in range(5)]
    library = paper_library(4)
    reference = [insert_buffers(t, library) for t in trees]
    results = solve_many(trees, library, jobs=1, precompile=precompile)
    for got, want in zip(results, reference):
        assert_identical(got, want)


def test_solve_many_ships_compiled_nets_to_workers():
    trees = [random_small_tree(seed) for seed in range(6)]
    library = paper_library(4)
    serial = solve_many(trees, library, jobs=1)
    parallel = solve_many(trees, library, jobs=2)
    for got, want in zip(parallel, serial):
        assert_identical(got, want)


def test_solve_many_accepts_precompiled_nets():
    trees = [random_small_tree(seed) for seed in range(3)]
    library = paper_library(4)
    compiled = [compile_net(t, library) for t in trees]
    reference = solve_many(trees, library, jobs=1)
    results = solve_many(compiled, library, jobs=1)
    for got, want in zip(results, reference):
        assert_identical(got, want)


# ----------------------------------------------------------------------
# Backend auto-selection
# ----------------------------------------------------------------------


def test_resolve_backend_auto():
    assert resolve_backend("object") == "object"
    assert resolve_backend("soa") == "soa"
    expected = "soa" if numpy is not None else "object"
    assert resolve_backend("auto") == expected


def test_insert_buffers_auto_backend():
    tree = random_small_tree(14)
    library = uniform_random_library(4, seed=140)
    result = insert_buffers(tree, library, backend="auto")
    expected = "soa" if numpy is not None else "object"
    assert result.stats.backend == expected
    explicit = insert_buffers(tree, library, backend="object")
    assert_identical(result, explicit)


def test_unknown_backend_still_rejected():
    tree = random_small_tree(15)
    with pytest.raises(AlgorithmError, match="unknown candidate-store"):
        insert_buffers(tree, uniform_random_library(3, seed=1),
                       backend="warp_drive")


# ----------------------------------------------------------------------
# Scratch arena (SoA backend)
# ----------------------------------------------------------------------


@pytest.mark.skipif(numpy is None, reason="numpy required for the arena")
class TestScratchArena:
    def test_blocks_are_recycled(self):
        from repro.core.stores.soa import ScratchArena

        arena = ScratchArena()
        view = arena.f8(10)
        block = view.base
        assert len(block) == 16  # next power of two
        arena.recycle(view)
        again = arena.f8(12)
        assert again.base is block  # same block, reused
        assert len(again) == 12

    def test_dtype_pools_are_separate(self):
        from repro.core.stores.soa import ScratchArena

        arena = ScratchArena()
        floats = arena.f8(4)
        ints = arena.ip(4)
        assert floats.dtype == numpy.float64
        assert ints.dtype == numpy.intp
        arena.recycle(floats)
        arena.recycle(ints)
        assert arena.f8(4).dtype == numpy.float64
        assert arena.ip(4).dtype == numpy.intp

    def test_double_recycle_is_ignored(self):
        from repro.core.stores.soa import ScratchArena

        arena = ScratchArena()
        view = arena.f8(5)
        arena.recycle(view)
        arena.recycle(view)  # second call must not double-pool the block
        first = arena.f8(5)
        second = arena.f8(5)
        assert first.base is not second.base

    def test_reset_forgets_outstanding_loans(self):
        from repro.core.stores.soa import ScratchArena

        arena = ScratchArena()
        leaked = arena.f8(6)
        arena.reset()
        arena.recycle(leaked)  # dead loan: ignored, not pooled
        assert arena.f8(6).base is not leaked.base

    def test_empty_borrows_share_singleton(self):
        from repro.core.stores.soa import ScratchArena

        arena = ScratchArena()
        assert len(arena.f8(0)) == 0
        assert arena.f8(0) is arena.f8(0)
        arena.recycle(arena.f8(0))  # no-op

    def test_iota_grows_and_matches_arange(self):
        from repro.core.stores.soa import ScratchArena

        arena = ScratchArena()
        assert arena.iota(5).tolist() == list(range(5))
        assert arena.iota(300).tolist() == list(range(300))


@pytest.mark.skipif(numpy is None, reason="numpy required for SoA")
def test_factory_reuse_isolated_across_solves():
    """Two consecutive solves through one factory must not share state."""
    library = uniform_random_library(5, seed=160)
    tree_a = random_small_tree(16)
    tree_b = random_small_tree(17)
    compiled_a = compile_net(tree_a, library)
    compiled_b = compile_net(tree_b, library)

    first_a = insert_buffers(compiled_a, library, backend="soa")
    factory = compiled_a.factory("soa")
    assert factory is compiled_a.factory("soa")  # cached per net

    # Solve B on its own compiled net, then A again on the *warm* one.
    insert_buffers(compiled_b, library, backend="soa")
    second_a = insert_buffers(compiled_a, library, backend="soa")
    assert_identical(first_a, second_a)
    assert_same_stats(first_a, second_a)

    # The first result's reconstruction is untouched by later solves.
    with auto_compile(False):
        fresh = insert_buffers(tree_a, library, backend="soa")
    assert first_a.assignment == fresh.assignment
    assert first_a.slack == fresh.slack


@pytest.mark.skipif(numpy is None, reason="numpy required for SoA")
def test_released_store_fails_loudly():
    from repro.core.stores.soa import SoAStoreFactory

    factory = SoAStoreFactory()
    store = factory.sink(3, 1.0e-9, 2.0e-14)
    assert not store.released()
    store.release()
    assert store.released()
    store.release()  # idempotent
    with pytest.raises(TypeError):
        len(store)
