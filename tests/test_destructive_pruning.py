"""The paper's literal (destructive) Convexpruning versus the default.

DESIGN.md documents why pruning the *live* candidate list — exactly as
the paper's pseudocode does — is safe on 2-pin nets but can lose
optimality across branch merges: ``min(Q_l, Q_r)`` is not an affine map
of the (C, Q) plane, so an interior point of one branch's hull can
become a hull vertex of the merged list.  These tests pin both halves of
that claim.
"""

import random

import pytest

from helpers import SLACK_ATOL, random_small_tree

from repro import (
    BufferLibrary,
    BufferType,
    Driver,
    RoutingTree,
    insert_buffers,
    paper_library,
    two_pin_net,
    uniform_random_library,
)
from repro.units import fF, ps


@pytest.mark.parametrize("segments", [4, 12, 40])
@pytest.mark.parametrize("lib_size", [1, 3, 8])
def test_exact_on_two_pin_nets(segments, lib_size):
    """On path nets there are no merges: destructive mode is optimal."""
    net = two_pin_net(length=9000.0, sink_capacitance=fF(15.0),
                      required_arrival=ps(1200.0), driver=Driver(250.0),
                      num_segments=segments)
    library = paper_library(lib_size)
    exact = insert_buffers(net, library)
    paper_mode = insert_buffers(net, library, destructive_pruning=True)
    assert paper_mode.slack == pytest.approx(exact.slack, abs=SLACK_ATOL)


def test_never_better_than_exact_on_trees():
    for seed in range(15):
        tree = random_small_tree(seed)
        library = uniform_random_library(4, seed=seed)
        exact = insert_buffers(tree, library)
        paper_mode = insert_buffers(tree, library, destructive_pruning=True)
        assert paper_mode.slack <= exact.slack + SLACK_ATOL


def _counterexample_instance():
    """The pinned instance (found by randomized search, seed 681825964)
    on which destructive pruning is strictly suboptimal."""
    rng = random.Random(681825964)
    library = BufferLibrary(
        [
            BufferType("A", rng.uniform(200, 5000), fF(rng.uniform(1, 20)),
                       ps(rng.uniform(20, 40))),
            BufferType("B", rng.uniform(200, 5000), fF(rng.uniform(1, 20)),
                       ps(rng.uniform(20, 40))),
            BufferType("C", rng.uniform(200, 5000), fF(rng.uniform(1, 20)),
                       ps(rng.uniform(20, 40))),
        ]
    )
    tree = RoutingTree.with_source(driver=Driver(rng.uniform(100, 1000)))
    a = tree.add_internal(0, rng.uniform(10, 400), fF(rng.uniform(5, 50)))
    b = tree.add_internal(a, rng.uniform(10, 400), fF(rng.uniform(5, 50)))
    for _ in range(2):
        c = tree.add_internal(b, rng.uniform(10, 400), fF(rng.uniform(5, 50)))
        d = tree.add_internal(c, rng.uniform(10, 400), fF(rng.uniform(5, 50)))
        tree.add_sink(d, rng.uniform(10, 400), fF(rng.uniform(5, 50)),
                      fF(rng.uniform(2, 41)), ps(rng.uniform(0, 1000)))
    tree.validate()
    return tree, library


def test_pinned_counterexample_shows_strict_gap():
    """Destructive pruning loses measurable slack on this instance."""
    tree, library = _counterexample_instance()
    exact = insert_buffers(tree, library)
    paper_mode = insert_buffers(tree, library, destructive_pruning=True)
    assert paper_mode.slack < exact.slack - ps(1.0)


def test_counterexample_verified_by_oracle():
    """Both modes report honest slacks — the gap is real, not a DP bug."""
    tree, library = _counterexample_instance()
    for mode in (False, True):
        result = insert_buffers(tree, library, destructive_pruning=mode)
        assert result.verify(tree).slack == pytest.approx(result.slack, rel=1e-12)


def test_algorithm_name_distinguishes_modes(line_net, small_library):
    default = insert_buffers(line_net, small_library)
    paper_mode = insert_buffers(line_net, small_library, destructive_pruning=True)
    assert default.stats.algorithm == "fast"
    assert paper_mode.stats.algorithm == "fast-destructive"
