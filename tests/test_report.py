"""Report-formatting tests."""

import pytest

from repro import Driver, evaluate_assignment, insert_buffers, two_pin_net
from repro.report import (
    describe_net,
    describe_result,
    full_report,
    render_tree,
    sink_slack_table,
)
from repro.units import fF, ps


@pytest.fixture
def solved(small_library):
    net = two_pin_net(length=6000.0, sink_capacitance=fF(20.0),
                      required_arrival=ps(900.0), driver=Driver(200.0),
                      num_segments=8)
    return net, insert_buffers(net, small_library)


def test_describe_net_mentions_counts(solved):
    net, _ = solved
    text = describe_net(net)
    assert str(net.num_sinks) in text
    assert str(net.num_buffer_positions) in text
    assert "driver" in text


def test_describe_net_flags_negative_sinks():
    from repro import RoutingTree

    net = RoutingTree.with_source()
    net.add_sink(0, 1.0, fF(1.0), capacitance=fF(2.0), required_arrival=0.0,
                 polarity=-1)
    assert "negative-polarity" in describe_net(net)


def test_describe_result_shows_improvement(solved):
    net, result = solved
    text = describe_result(net, result)
    assert "unbuffered slack" in text
    assert "improvement" in text
    assert "usage by type" in text


def test_sink_slack_table_sorted_and_limited(solved):
    net, result = solved
    report = evaluate_assignment(net, result.assignment)
    text = sink_slack_table(report, net, limit=5)
    assert "slack (ps)" in text


def test_render_tree_marks_buffers(solved):
    net, result = solved
    text = render_tree(net, result)
    names = {b.name for b in result.assignment.values()}
    assert any(name in text for name in names)
    assert "sink" in text


def test_render_tree_truncates():
    net = two_pin_net(length=10_000.0, num_segments=500)
    text = render_tree(net, max_nodes=20)
    assert "truncated" in text


def test_render_tree_marks_inverted_sinks():
    from repro import RoutingTree

    net = RoutingTree.with_source()
    net.add_sink(0, 1.0, fF(1.0), capacitance=fF(2.0), required_arrival=0.0,
                 polarity=-1)
    from repro import BufferLibrary, BufferType, insert_buffers_with_inverters

    assert "(inverted)" in render_tree(net)


def test_full_report_sections(solved):
    net, result = solved
    text = full_report(net, result)
    for section in ("== net ==", "== solution ==", "== critical sinks =="):
        assert section in text
