"""Node and Driver model tests."""

import math

import pytest

from repro.errors import TreeError
from repro.tree.node import Driver, Node, NodeKind
from repro.units import fF, ps


def test_driver_delay_linear():
    drv = Driver(resistance=500.0, intrinsic_delay=ps(10.0))
    assert math.isclose(drv.delay(fF(20.0)), ps(10.0) + 500.0 * fF(20.0))


def test_driver_zero_resistance_allowed():
    assert Driver(resistance=0.0).delay(fF(5.0)) == 0.0


def test_driver_rejects_negative():
    with pytest.raises(TreeError):
        Driver(resistance=-1.0)
    with pytest.raises(TreeError):
        Driver(resistance=1.0, intrinsic_delay=-1.0)


def test_sink_node_fields():
    node = Node(1, NodeKind.SINK, capacitance=fF(5.0), required_arrival=ps(100.0))
    assert node.is_sink and not node.is_source


def test_sink_cannot_be_buffer_position():
    with pytest.raises(TreeError):
        Node(1, NodeKind.SINK, capacitance=fF(5.0), is_buffer_position=True)


def test_source_cannot_be_buffer_position():
    with pytest.raises(TreeError):
        Node(0, NodeKind.SOURCE, is_buffer_position=True)


def test_sink_negative_capacitance_rejected():
    with pytest.raises(TreeError):
        Node(1, NodeKind.SINK, capacitance=-fF(1.0))


def test_allowed_buffers_requires_buffer_position():
    with pytest.raises(TreeError):
        Node(2, NodeKind.INTERNAL, is_buffer_position=False,
             allowed_buffers=frozenset({"x"}))


def test_permits_with_restriction():
    node = Node(2, NodeKind.INTERNAL, is_buffer_position=True,
                allowed_buffers=frozenset({"a", "b"}))
    assert node.permits("a")
    assert not node.permits("c")


def test_permits_unrestricted():
    node = Node(2, NodeKind.INTERNAL, is_buffer_position=True)
    assert node.permits("anything")


def test_non_buffer_position_permits_nothing():
    node = Node(2, NodeKind.INTERNAL, is_buffer_position=False)
    assert not node.permits("a")
