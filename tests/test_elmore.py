"""Elmore-delay analysis tests, including hand-computed references."""

import pytest

from repro import Driver, RoutingTree, star_net, two_pin_net, unbuffered_slack
from repro.errors import TimingError
from repro.timing.elmore import downstream_capacitance, elmore_delays
from repro.units import fF, ps


def test_single_wire_hand_computed():
    # source --(R=100, C=10fF)--> sink(5fF), ideal driver.
    tree = RoutingTree.with_source()
    sink = tree.add_sink(0, 100.0, fF(10.0), capacitance=fF(5.0), required_arrival=0.0)
    delays = elmore_delays(tree)
    assert delays[sink] == pytest.approx(100.0 * (fF(5.0) + fF(5.0)))


def test_driver_adds_its_delay():
    tree = RoutingTree.with_source(driver=Driver(resistance=50.0, intrinsic_delay=ps(3.0)))
    sink = tree.add_sink(0, 100.0, fF(10.0), capacitance=fF(5.0), required_arrival=0.0)
    delays = elmore_delays(tree)
    # Driver sees wire + sink cap = 15 fF.
    expected = ps(3.0) + 50.0 * fF(15.0) + 100.0 * (fF(5.0) + fF(5.0))
    assert delays[sink] == pytest.approx(expected)


def test_two_segment_chain_hand_computed():
    # src --(R1,C1)--> v --(R2,C2)--> sink(CL)
    tree = RoutingTree.with_source()
    v = tree.add_internal(0, 10.0, fF(2.0))
    sink = tree.add_sink(v, 20.0, fF(4.0), capacitance=fF(6.0), required_arrival=0.0)
    delays = elmore_delays(tree)
    downstream_v = fF(4.0) + fF(6.0)  # second wire + load
    expected = 10.0 * (fF(1.0) + downstream_v) + 20.0 * (fF(2.0) + fF(6.0))
    assert delays[sink] == pytest.approx(expected)


def test_branch_delays_independent_loads():
    # Two sinks with different loads under one branch point.
    tree = RoutingTree.with_source()
    v = tree.add_internal(0, 10.0, fF(2.0), buffer_position=False)
    light = tree.add_sink(v, 5.0, fF(1.0), capacitance=fF(1.0), required_arrival=0.0)
    heavy = tree.add_sink(v, 5.0, fF(1.0), capacitance=fF(30.0), required_arrival=0.0)
    delays = elmore_delays(tree)
    # Shared trunk delay is equal; the heavy sink adds its own load term.
    assert delays[heavy] > delays[light]
    diff = 5.0 * (fF(30.0) - fF(1.0))
    assert delays[heavy] - delays[light] == pytest.approx(diff)


def test_downstream_capacitance_totals():
    tree = RoutingTree.with_source()
    v = tree.add_internal(0, 10.0, fF(2.0))
    tree.add_sink(v, 5.0, fF(1.0), capacitance=fF(3.0), required_arrival=0.0)
    tree.add_sink(v, 5.0, fF(1.0), capacitance=fF(4.0), required_arrival=0.0)
    caps = downstream_capacitance(tree)
    assert caps[v] == pytest.approx(fF(1.0 + 3.0 + 1.0 + 4.0))
    assert caps[0] == pytest.approx(caps[v] + fF(2.0))


def test_unbuffered_slack_is_worst_sink():
    tree = RoutingTree.with_source()
    v = tree.add_internal(0, 10.0, fF(2.0), buffer_position=False)
    tree.add_sink(v, 5.0, fF(1.0), capacitance=fF(3.0), required_arrival=ps(100.0))
    tree.add_sink(v, 5.0, fF(1.0), capacitance=fF(3.0), required_arrival=ps(10.0))
    delays = elmore_delays(tree)
    slacks = [
        tree.node(s.node_id).required_arrival - d for s, d in
        zip(tree.sinks(), delays.values())
    ]
    assert unbuffered_slack(tree) == pytest.approx(min(slacks))


def test_star_delays_symmetric():
    net = star_net(4, arm_length=100.0)
    delays = list(elmore_delays(net).values())
    assert all(d == pytest.approx(delays[0]) for d in delays)


def test_longer_line_has_larger_delay():
    short = two_pin_net(length=1000.0, num_segments=4)
    long = two_pin_net(length=2000.0, num_segments=4)
    assert max(elmore_delays(long).values()) > max(elmore_delays(short).values())


def test_quadratic_growth_in_length():
    # Unbuffered line delay grows ~quadratically: d(2L) ~ 4 d(L) for
    # wire-dominated lines (the reason buffers help at all).
    base = two_pin_net(length=5000.0, num_segments=1, sink_capacitance=fF(0.0))
    double = two_pin_net(length=10000.0, num_segments=1, sink_capacitance=fF(0.0))
    d1 = max(elmore_delays(base).values())
    d2 = max(elmore_delays(double).values())
    assert d2 == pytest.approx(4.0 * d1, rel=1e-9)


def test_explicit_driver_argument_overrides_tree_driver():
    tree = two_pin_net(length=100.0, driver=Driver(1000.0))
    with_tree_driver = max(elmore_delays(tree).values())
    with_override = max(elmore_delays(tree, driver=Driver(0.0)).values())
    assert with_override < with_tree_driver
