"""Algorithm-registry tests: the pluggable dispatch layer."""

import pytest

from repro import insert_buffers
from repro.core.registry import (
    InsertionAlgorithm,
    algorithm_names,
    available_algorithms,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.solution import BufferingResult
from repro.errors import AlgorithmError


def test_builtins_registered():
    assert set(algorithm_names()) >= {"fast", "lillis", "van_ginneken"}


def test_unknown_name_raises_with_choices():
    with pytest.raises(AlgorithmError) as excinfo:
        get_algorithm("nonexistent")
    message = str(excinfo.value)
    assert "nonexistent" in message
    assert "fast" in message  # the error lists the registered names


def test_metadata_populated():
    for name, algorithm in available_algorithms().items():
        assert algorithm.name == name
        assert algorithm.complexity.startswith("O(")
        assert algorithm.summary


def test_duplicate_registration_rejected():
    with pytest.raises(AlgorithmError, match="already registered"):

        @register_algorithm("fast")
        class Impostor(InsertionAlgorithm):
            def run(self, tree, library, driver=None, backend="object", **options):
                raise NotImplementedError

    # The original registration is untouched.
    assert type(get_algorithm("fast")).__name__ == "FastAlgorithm"


def test_reregistering_same_class_is_noop():
    cls = type(get_algorithm("fast"))
    register_algorithm("fast")(cls)  # simulates a module re-import
    assert type(get_algorithm("fast")) is cls


def test_third_party_algorithm_dispatches(line_net, small_library):
    @register_algorithm("reverse_lillis")
    class ReverseLillis(InsertionAlgorithm):
        """A thin wrapper proving third-party code needs no core edits."""

        complexity = "O(b^2 n^2)"
        summary = "delegates to lillis; exists to test the plugin path"

        def run(self, tree, library, driver=None, backend="object", **options):
            from repro.core.lillis import LillisAlgorithm

            return LillisAlgorithm().run(
                tree, library, driver=driver, backend=backend
            )

    try:
        assert "reverse_lillis" in algorithm_names()
        result = insert_buffers(line_net, small_library,
                                algorithm="reverse_lillis")
        assert isinstance(result, BufferingResult)
        reference = insert_buffers(line_net, small_library, algorithm="lillis")
        assert result.slack == reference.slack
    finally:
        unregister_algorithm("reverse_lillis")
    assert "reverse_lillis" not in algorithm_names()


def test_unknown_options_rejected_via_registry(line_net, small_library):
    with pytest.raises(AlgorithmError, match="unknown options"):
        insert_buffers(line_net, small_library, algorithm="fast",
                       bogus_option=1)


def test_unregister_unknown_is_noop():
    unregister_algorithm("never_existed")  # must not raise
