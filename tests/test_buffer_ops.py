"""Add-buffer operation tests: the O(bk) scan vs the O(k+b) hull walk."""

import random

import pytest

from helpers import make_candidates, qc

from repro import BufferLibrary, BufferType
from repro.core.buffer_ops import (
    BufferPlan,
    generate_fast,
    generate_lillis,
    insert_candidates,
)
from repro.core.pruning import is_nonredundant, prune_dominated
from repro.units import fF, ps


def lib3():
    return [
        BufferType("hi_r", 4000.0, fF(1.0), ps(30.0)),
        BufferType("mid", 1000.0, fF(5.0), ps(32.0)),
        BufferType("lo_r", 250.0, fF(18.0), ps(35.0)),
    ]


class TestBufferPlan:
    def test_orders(self):
        plan = BufferPlan(7, lib3())
        rs = [b.driving_resistance for b in plan.by_resistance_desc]
        assert rs == sorted(rs, reverse=True)
        caps = [
            plan.by_resistance_desc[i].input_capacitance for i in plan.cap_order
        ]
        assert caps == sorted(caps)

    def test_len(self):
        assert len(BufferPlan(0, lib3())) == 3

    def test_records_node(self):
        assert BufferPlan(42, lib3()).node_id == 42

    def test_shared_view_reuses_orders(self):
        full = BufferPlan(-1, lib3())
        view = BufferPlan.shared_view(9, full)
        assert view.node_id == 9
        assert view.by_resistance_desc is full.by_resistance_desc
        assert view.cap_order is full.cap_order
        assert len(view) == len(full)


class TestGenerateEquivalence:
    def test_simple_list(self):
        cands = prune_dominated(
            make_candidates([(0.0, fF(1.0)), (ps(50.0), fF(10.0)),
                             (ps(200.0), fF(40.0))])
        )
        plan = BufferPlan(1, lib3())
        assert qc(generate_lillis(cands, plan)) == qc(generate_fast(cands, plan))

    def test_randomized_lists_and_libraries(self):
        rng = random.Random(99)
        for trial in range(60):
            size = rng.randrange(1, 9)
            buffers = [
                BufferType(
                    f"b{i}",
                    rng.uniform(100.0, 8000.0),
                    fF(rng.uniform(0.5, 25.0)),
                    ps(rng.uniform(20.0, 40.0)),
                )
                for i in range(size)
            ]
            plan = BufferPlan(0, buffers)
            raw = sorted(
                {(ps(rng.uniform(0, 1000)), fF(rng.uniform(0.1, 100)))
                 for _ in range(rng.randrange(1, 12))},
                key=lambda p: p[1],
            )
            cands = prune_dominated(make_candidates(list(raw)))
            if not cands:
                continue
            lillis = generate_lillis(cands, plan)
            fast = generate_fast(cands, plan)
            assert qc(lillis) == qc(fast), f"trial {trial}"

    def test_same_chosen_base_candidates(self):
        """Not just equal (q, c): the *provenance* must match too."""
        cands = prune_dominated(
            make_candidates([(0.0, fF(1.0)), (ps(80.0), fF(6.0)),
                             (ps(300.0), fF(50.0))])
        )
        plan = BufferPlan(1, lib3())
        lillis = generate_lillis(cands, plan)
        fast = generate_fast(cands, plan)
        for a, b in zip(lillis, fast):
            assert a.decision.buffer.name == b.decision.buffer.name
            assert a.decision.below is b.decision.below


class TestGenerateProperties:
    def test_output_sorted_and_nonredundant(self):
        cands = prune_dominated(
            make_candidates([(0.0, fF(1.0)), (ps(100.0), fF(20.0))])
        )
        out = generate_fast(cands, BufferPlan(0, lib3()))
        assert is_nonredundant(out)

    def test_new_candidates_have_buffer_input_caps(self):
        cands = make_candidates([(ps(500.0), fF(10.0))])
        out = generate_fast(cands, BufferPlan(0, lib3()))
        caps = {c.c for c in out}
        assert caps <= {b.input_capacitance for b in lib3()}

    def test_buffer_delay_formula(self):
        """One candidate, one buffer: beta = (q - K - R*c, C_b)."""
        buf = BufferType("b", 1000.0, fF(4.0), ps(10.0))
        cands = make_candidates([(ps(500.0), fF(10.0))])
        out = generate_fast(cands, BufferPlan(0, [buf]))
        assert len(out) == 1
        expected_q = ps(500.0) - ps(10.0) - 1000.0 * fF(10.0)
        assert out[0].q == pytest.approx(expected_q)
        assert out[0].c == fF(4.0)

    def test_empty_candidates(self):
        plan = BufferPlan(0, lib3())
        assert generate_fast([], plan) == []
        assert generate_lillis([], plan) == []

    def test_weak_buffer_prefers_low_c_candidate(self):
        """A high-R buffer pays dearly for load: it buffers the low-c
        candidate even though the high-c one has more slack."""
        cands = prune_dominated(
            make_candidates([(ps(100.0), fF(1.0)), (ps(140.0), fF(50.0))])
        )
        weak = BufferType("w", 7000.0, fF(1.0), ps(0.0))
        out = generate_fast(cands, BufferPlan(0, [weak]))
        assert out[0].decision.below is cands[0].decision

    def test_strong_buffer_prefers_high_q_candidate(self):
        cands = prune_dominated(
            make_candidates([(ps(100.0), fF(1.0)), (ps(140.0), fF(50.0))])
        )
        strong = BufferType("s", 100.0, fF(10.0), ps(0.0))
        out = generate_fast(cands, BufferPlan(0, [strong]))
        assert out[0].decision.below is cands[1].decision


class TestInsertCandidates:
    def test_merges_sorted(self):
        base = make_candidates([(1.0, 1.0), (5.0, 5.0)])
        new = make_candidates([(3.0, 2.0)])
        assert qc(insert_candidates(base, new)) == [
            (1.0, 1.0), (3.0, 2.0), (5.0, 5.0)
        ]

    def test_new_dominating_old_removes_it(self):
        base = make_candidates([(1.0, 1.0), (2.0, 5.0)])
        new = make_candidates([(4.0, 2.0)])
        assert qc(insert_candidates(base, new)) == [(1.0, 1.0), (4.0, 2.0)]

    def test_old_dominating_new_drops_new(self):
        base = make_candidates([(10.0, 1.0)])
        new = make_candidates([(3.0, 2.0)])
        assert qc(insert_candidates(base, new)) == [(10.0, 1.0)]

    def test_empty_cases(self):
        base = make_candidates([(1.0, 1.0)])
        assert insert_candidates(base, []) is base
        new = make_candidates([(1.0, 1.0)])
        assert qc(insert_candidates([], new)) == [(1.0, 1.0)]

    def test_result_nonredundant(self):
        base = make_candidates([(1.0, 1.0), (4.0, 3.0), (9.0, 9.0)])
        new = make_candidates([(2.0, 0.5), (4.5, 3.5), (8.0, 10.0)])
        assert is_nonredundant(insert_candidates(base, new))
