"""Cross-algorithm equivalence: the paper's central correctness claim.

Both the O(b^2 n^2) baseline and the O(b n^2) algorithm are *exact*, so
they must return identical optimal slacks on every instance, and every
reported slack must be reproduced by the independent timing oracle on
the reconstructed assignment.
"""

import pytest

from helpers import SLACK_ATOL, random_small_tree

from repro import (
    Driver,
    balanced_tree_net,
    caterpillar_net,
    insert_buffers,
    paper_library,
    random_tree_net,
    segment_tree,
    star_net,
    two_pin_net,
    uniform_random_library,
    unbuffered_slack,
)
from repro.units import fF, ps

NETS = {
    "line": lambda: two_pin_net(
        length=8000.0, sink_capacitance=fF(20.0), required_arrival=ps(900.0),
        driver=Driver(200.0), num_segments=24,
    ),
    "caterpillar": lambda: caterpillar_net(
        8, required_arrival=(ps(100.0), ps(900.0)), driver=Driver(300.0), seed=5,
    ),
    "balanced": lambda: balanced_tree_net(
        3, edge_length=600.0, required_arrival=ps(800.0), driver=Driver(250.0),
    ),
    "star_segmented": lambda: segment_tree(
        star_net(4, arm_length=2500.0, required_arrival=ps(700.0),
                 driver=Driver(400.0)),
        250.0,
    ),
    "random": lambda: segment_tree(
        random_tree_net(20, seed=8, required_arrival=(ps(200.0), ps(1500.0)),
                        driver=Driver(200.0)),
        400.0,
    ),
}


@pytest.mark.parametrize("net_name", sorted(NETS))
@pytest.mark.parametrize("lib_size", [1, 2, 8])
def test_fast_equals_lillis(net_name, lib_size):
    tree = NETS[net_name]()
    library = paper_library(lib_size)
    fast = insert_buffers(tree, library, algorithm="fast")
    lillis = insert_buffers(tree, library, algorithm="lillis")
    assert fast.slack == pytest.approx(lillis.slack, abs=SLACK_ATOL)


@pytest.mark.parametrize("net_name", sorted(NETS))
def test_slack_verified_by_oracle(net_name):
    tree = NETS[net_name]()
    library = paper_library(8)
    for algorithm in ("fast", "lillis"):
        result = insert_buffers(tree, library, algorithm=algorithm)
        report = result.verify(tree)
        assert report.slack == pytest.approx(result.slack, rel=1e-12), algorithm


@pytest.mark.parametrize("net_name", sorted(NETS))
def test_buffering_never_hurts(net_name):
    tree = NETS[net_name]()
    library = paper_library(8)
    result = insert_buffers(tree, library)
    assert result.slack >= unbuffered_slack(tree) - SLACK_ATOL


def test_bigger_library_never_hurts():
    """A superset library can only improve the optimum (more choices)."""
    tree = NETS["line"]()
    small = paper_library(8)
    slack_small = insert_buffers(tree, small).slack

    from repro import BufferLibrary

    extra = paper_library(16, jitter=0.1, seed=3)
    renamed = [
        type(b)(f"extra_{i}", b.driving_resistance, b.input_capacitance,
                b.intrinsic_delay, b.cost)
        for i, b in enumerate(extra)
    ]
    superset = BufferLibrary(list(small.buffers) + renamed)
    slack_super = insert_buffers(tree, superset).slack
    assert slack_super >= slack_small - SLACK_ATOL


def test_more_positions_never_hurt():
    """Segmenting more finely can only improve the optimum."""
    base = two_pin_net(length=8000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(900.0), driver=Driver(200.0),
                       num_segments=8)
    fine = two_pin_net(length=8000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(900.0), driver=Driver(200.0),
                       num_segments=32)
    library = paper_library(8)
    assert (
        insert_buffers(fine, library).slack
        >= insert_buffers(base, library).slack - SLACK_ATOL
    )


@pytest.mark.parametrize("seed", range(25))
def test_fast_equals_lillis_on_random_trees(seed):
    tree = random_small_tree(seed)
    library = uniform_random_library(5, seed=seed + 1000)
    fast = insert_buffers(tree, library, algorithm="fast")
    lillis = insert_buffers(tree, library, algorithm="lillis")
    assert fast.slack == pytest.approx(lillis.slack, abs=SLACK_ATOL)
    assert fast.verify(tree).slack == pytest.approx(fast.slack, rel=1e-12)


@pytest.mark.parametrize("seed", range(10))
def test_identical_assignments_not_required_but_slacks_equal(seed):
    """Multiple optima may exist; assignments may differ, slacks cannot."""
    tree = random_small_tree(seed + 50)
    library = uniform_random_library(4, seed=seed)
    fast = insert_buffers(tree, library, algorithm="fast")
    lillis = insert_buffers(tree, library, algorithm="lillis")
    from repro import evaluate_slack

    assert evaluate_slack(tree, fast.assignment) == pytest.approx(
        evaluate_slack(tree, lillis.assignment), abs=SLACK_ATOL
    )
