"""Branch-merge operation tests, including brute-force cross-checks."""

import itertools

import pytest

from helpers import make_candidates, qc

from repro.core.candidate import MergeDecision
from repro.core.merge import merge_branches
from repro.core.pruning import is_nonredundant, prune_dominated


def brute_force_merge(left, right):
    """All |L| x |R| pairings, then dominance pruning: the spec."""
    pairs = [
        (min(a.q, b.q), a.c + b.c) for a, b in itertools.product(left, right)
    ]
    pairs.sort(key=lambda p: (p[1], p[0]))
    kept = []
    for q, c in pairs:
        if kept and c == kept[-1][1] and q > kept[-1][0]:
            kept.pop()
        if not kept or q > kept[-1][0]:
            kept.append((q, c))
    return kept


def test_single_by_single():
    left = make_candidates([(3.0, 1.0)])
    right = make_candidates([(5.0, 2.0)])
    assert qc(merge_branches(left, right)) == [(3.0, 3.0)]


def test_classic_example():
    left = make_candidates([(1.0, 1.0), (5.0, 2.0)])
    right = make_candidates([(3.0, 1.0)])
    assert qc(merge_branches(left, right)) == [(1.0, 2.0), (3.0, 3.0)]


def test_matches_brute_force_on_fixed_lists():
    left = make_candidates([(0.0, 0.0), (2.0, 1.5), (5.0, 4.0), (9.0, 8.0)])
    right = make_candidates([(1.0, 0.5), (4.0, 2.0), (6.0, 5.0)])
    expected = brute_force_merge(left, right)
    got = [(c.q, c.c) for c in merge_branches(left, right)]
    assert got == expected


def test_equal_q_tie_advances_both():
    left = make_candidates([(2.0, 1.0), (7.0, 3.0)])
    right = make_candidates([(2.0, 2.0), (7.0, 5.0)])
    expected = brute_force_merge(left, right)
    assert [(c.q, c.c) for c in merge_branches(left, right)] == expected


def test_output_nonredundant():
    left = make_candidates([(0.0, 0.0), (1.0, 1.0), (4.0, 2.0)])
    right = make_candidates([(0.5, 0.2), (3.0, 3.0)])
    assert is_nonredundant(merge_branches(left, right))


def test_output_size_at_most_sum_minus_one():
    left = make_candidates([(float(i), float(i)) for i in range(6)])
    right = make_candidates([(i + 0.5, i + 0.25) for i in range(4)])
    merged = merge_branches(left, right)
    assert len(merged) <= len(left) + len(right) - 1


def test_decisions_are_merge_decisions():
    left = make_candidates([(1.0, 1.0)])
    right = make_candidates([(2.0, 2.0)])
    merged = merge_branches(left, right)
    decision = merged[0].decision
    assert isinstance(decision, MergeDecision)
    assert decision.left is left[0].decision
    assert decision.right is right[0].decision


def test_empty_side_returns_other():
    cands = make_candidates([(1.0, 1.0)])
    assert merge_branches([], cands) is cands
    assert merge_branches(cands, []) is cands


def test_commutative_in_qc():
    left = make_candidates([(0.0, 0.0), (2.0, 1.5), (5.0, 4.0)])
    right = make_candidates([(1.0, 0.5), (4.0, 2.0)])
    ab = qc(merge_branches(left, right))
    ba = qc(merge_branches(right, left))
    assert ab == ba


def test_merge_is_spec_equal_on_random_lists():
    import random

    rng = random.Random(11)
    for _ in range(50):
        def random_list():
            points = sorted(
                {(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in
                 range(rng.randrange(1, 8))},
                key=lambda p: p[1],
            )
            return prune_dominated(
                make_candidates([(q, c) for q, c in points])
            )

        left, right = random_list(), random_list()
        if not left or not right:
            continue
        expected = brute_force_merge(left, right)
        assert [(c.q, c.c) for c in merge_branches(left, right)] == expected
