"""Per-node slack-map tests."""

import pytest

from repro import (
    Driver,
    evaluate_assignment,
    insert_buffers,
    paper_library,
    random_tree_net,
    two_pin_net,
)
from repro.timing.slack_map import compute_slack_map
from repro.units import fF, ps


@pytest.fixture
def solved():
    net = random_tree_net(12, seed=6, required_arrival=(ps(300.0), ps(1200.0)),
                          driver=Driver(250.0))
    result = insert_buffers(net, paper_library(4))
    return net, result


def test_worst_slack_matches_timing_report(solved):
    net, result = solved
    slack_map = compute_slack_map(net, result.assignment)
    report = evaluate_assignment(net, result.assignment)
    assert slack_map.worst_slack == pytest.approx(report.slack, rel=1e-12)


def test_sink_arrivals_match_report(solved):
    net, result = solved
    slack_map = compute_slack_map(net, result.assignment)
    report = evaluate_assignment(net, result.assignment)
    for sink_id, delay in report.sink_delays.items():
        assert slack_map.arrival[sink_id] == pytest.approx(delay, rel=1e-12)


def test_all_slacks_at_least_worst(solved):
    net, result = solved
    slack_map = compute_slack_map(net, result.assignment)
    for node_id, slack in slack_map.slack.items():
        assert slack >= slack_map.worst_slack - 1e-15


def test_root_slack_equals_worst(solved):
    net, result = solved
    slack_map = compute_slack_map(net, result.assignment)
    assert slack_map.slack[net.root_id] == pytest.approx(
        slack_map.worst_slack, rel=1e-12
    )


def test_critical_path_ends_at_critical_sink(solved):
    net, result = solved
    slack_map = compute_slack_map(net, result.assignment)
    report = evaluate_assignment(net, result.assignment)
    path = slack_map.critical_path(net)
    assert path[0] == net.root_id
    assert path[-1] == report.critical_sink
    # The path is connected root-to-sink.
    for parent, child in zip(path, path[1:]):
        assert child in net.children_of(parent)


def test_unbuffered_map_on_line():
    net = two_pin_net(length=5000.0, sink_capacitance=fF(20.0),
                      required_arrival=ps(800.0), driver=Driver(200.0),
                      num_segments=6)
    slack_map = compute_slack_map(net)
    # A path net: every node is critical.
    path = slack_map.critical_path(net)
    assert len(path) == net.num_nodes
    from repro import unbuffered_slack

    assert slack_map.worst_slack == pytest.approx(unbuffered_slack(net))


def test_buffer_changes_downstream_required_times():
    net = two_pin_net(length=5000.0, sink_capacitance=fF(20.0),
                      required_arrival=ps(800.0), driver=Driver(200.0),
                      num_segments=6)
    library = paper_library(4)
    result = insert_buffers(net, library)
    before = compute_slack_map(net)
    after = compute_slack_map(net, result.assignment)
    assert after.worst_slack > before.worst_slack
