"""Cost-bounded extension tests: frontier shape and oracle agreement."""

import pytest

from helpers import SLACK_ATOL, random_small_tree

from repro import (
    Driver,
    evaluate_slack,
    insert_buffers,
    paper_library,
    two_pin_net,
    uniform_random_library,
    unbuffered_slack,
)
from repro.cost import minimize_cost, slack_cost_frontier
from repro.errors import AlgorithmError, InfeasibleError
from repro.units import fF, ps


@pytest.fixture
def net():
    return two_pin_net(length=7000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(900.0), driver=Driver(250.0),
                       num_segments=14)


def test_frontier_monotone(net):
    frontier = slack_cost_frontier(net, paper_library(4))
    costs = [p.cost for p in frontier]
    slacks = [p.slack for p in frontier]
    assert costs == sorted(costs)
    assert slacks == sorted(slacks)
    assert len(set(costs)) == len(costs)


def test_frontier_starts_unbuffered_and_ends_optimal(net):
    library = paper_library(4)
    frontier = slack_cost_frontier(net, library)
    assert frontier[0].cost == 0
    assert frontier[0].slack == pytest.approx(unbuffered_slack(net))
    optimum = insert_buffers(net, library)
    assert frontier[-1].slack == pytest.approx(optimum.slack, abs=SLACK_ATOL)


def test_frontier_points_all_verified(net):
    library = paper_library(4)
    for point in slack_cost_frontier(net, library):
        measured = evaluate_slack(net, point.assignment)
        assert measured == pytest.approx(point.slack, rel=1e-12)
        assert len(point.assignment) >= 0
        assert point.num_buffers == len(point.assignment)


def test_frontier_cost_counts_buffers_by_default(net):
    for point in slack_cost_frontier(net, paper_library(4)):
        assert point.cost == point.num_buffers


def test_custom_cost_function(net):
    library = paper_library(4)
    frontier = slack_cost_frontier(
        net, library, cost_fn=lambda b: 2
    )
    assert all(p.cost % 2 == 0 for p in frontier)


def test_cost_fn_validation(net):
    with pytest.raises(AlgorithmError):
        slack_cost_frontier(net, paper_library(2), cost_fn=lambda b: 0.5)
    with pytest.raises(AlgorithmError):
        slack_cost_frontier(net, paper_library(2), cost_fn=lambda b: -1)


def test_minimize_cost_returns_cheapest_meeting_target(net):
    library = paper_library(4)
    frontier = slack_cost_frontier(net, library)
    assert len(frontier) >= 2
    target = frontier[1].slack  # exactly achievable at cost of point 1
    result = minimize_cost(net, library, slack_target=target)
    assert result.cost == frontier[1].cost
    assert result.slack >= target


def test_minimize_cost_zero_target_prefers_no_buffers(net):
    library = paper_library(4)
    base = unbuffered_slack(net)
    result = minimize_cost(net, library, slack_target=base - ps(1.0))
    assert result.cost == 0
    assert result.assignment == {}


def test_minimize_cost_infeasible(net):
    with pytest.raises(InfeasibleError):
        minimize_cost(net, paper_library(4), slack_target=1.0)  # one second!


def test_max_cost_truncates_frontier(net):
    library = paper_library(4)
    full = slack_cost_frontier(net, library)
    capped = slack_cost_frontier(net, library, max_cost=1)
    assert all(p.cost <= 1 for p in capped)
    assert capped[0].slack == pytest.approx(full[0].slack)


def test_frontier_matches_bruteforce_per_cost_on_tiny_instance():
    """For each buffer count k, the frontier's slack at cost <= k must
    equal the best brute-force assignment using <= k buffers."""
    import itertools

    net = two_pin_net(length=3000.0, sink_capacitance=fF(20.0),
                      required_arrival=ps(900.0), driver=Driver(200.0),
                      num_segments=5)
    library = paper_library(2)
    positions = [n.node_id for n in net.buffer_positions()]

    best_by_count = {}
    choices = [None] + list(library.buffers)
    for combo in itertools.product(choices, repeat=len(positions)):
        assignment = {
            pos: buf for pos, buf in zip(positions, combo) if buf is not None
        }
        slack = evaluate_slack(net, assignment)
        k = len(assignment)
        if k not in best_by_count or slack > best_by_count[k]:
            best_by_count[k] = slack

    frontier = slack_cost_frontier(net, library)
    for point in frontier:
        expected = max(
            slack for k, slack in best_by_count.items() if k <= point.cost
        )
        assert point.slack == pytest.approx(expected, rel=1e-12)


@pytest.mark.parametrize("seed", range(8))
def test_frontier_on_random_trees_consistent_with_unconstrained(seed):
    tree = random_small_tree(seed)
    library = uniform_random_library(3, seed=seed + 99)
    frontier = slack_cost_frontier(tree, library)
    optimum = insert_buffers(tree, library)
    assert frontier[-1].slack == pytest.approx(optimum.slack, abs=SLACK_ATOL)
    for point in frontier:
        assert evaluate_slack(tree, point.assignment) == pytest.approx(
            point.slack, rel=1e-12
        )
