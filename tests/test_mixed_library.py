"""mixed_paper_library generator tests."""

import pytest

from repro import mixed_paper_library
from repro.errors import LibraryError


def test_inverter_fraction_counts():
    for size, fraction, expected in [(8, 0.5, 4), (10, 0.2, 2), (6, 1.0, 6),
                                     (6, 0.0, 0)]:
        library = mixed_paper_library(size, inverter_fraction=fraction)
        inverters = sum(1 for b in library if b.inverting)
        assert inverters == expected, (size, fraction)


def test_fraction_validation():
    with pytest.raises(LibraryError):
        mixed_paper_library(8, inverter_fraction=1.5)
    with pytest.raises(LibraryError):
        mixed_paper_library(8, inverter_fraction=-0.1)


def test_inverters_spread_across_ladder():
    library = mixed_paper_library(16, inverter_fraction=0.25)
    inverter_rs = [b.driving_resistance for b in library if b.inverting]
    r_lo, r_hi = library.resistance_range()
    # Not all inverters bunched at one end of the strength range.
    assert min(inverter_rs) < (r_lo * r_hi) ** 0.5 < max(inverter_rs)


def test_inverters_electrically_favourable():
    """An inverter is one stage: slightly better R and K than the
    equally-positioned buffer would be."""
    plain = mixed_paper_library(8, inverter_fraction=0.0)
    mixed = mixed_paper_library(8, inverter_fraction=0.5)
    for base, cell in zip(plain, mixed):
        if cell.inverting:
            assert cell.driving_resistance < base.driving_resistance
            assert cell.intrinsic_delay < base.intrinsic_delay


def test_names_unique_and_typed():
    library = mixed_paper_library(12, inverter_fraction=0.5)
    names = [b.name for b in library]
    assert len(set(names)) == 12
    for cell in library:
        if cell.inverting:
            assert cell.name.startswith("INV_")
        else:
            assert cell.name.startswith("BUF_")


def test_jitter_reproducible():
    a = mixed_paper_library(8, jitter=0.05, seed=3)
    b = mixed_paper_library(8, jitter=0.05, seed=3)
    assert a == b
