"""Property-based tests (hypothesis) for the candidate algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_candidates

from repro.core.pruning import (
    convex_prune,
    is_convex,
    is_nonredundant,
    prune_dominated,
)

# (q, c) points with well-behaved floats; c sorted before pruning.
points = st.lists(
    st.tuples(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


def sorted_candidates(raw):
    return make_candidates(sorted(raw, key=lambda p: (p[1], p[0])))


@given(points)
def test_prune_dominated_output_nonredundant(raw):
    assert is_nonredundant(prune_dominated(sorted_candidates(raw)))


@given(points)
def test_prune_dominated_is_subset(raw):
    cands = sorted_candidates(raw)
    kept = prune_dominated(cands)
    ids = {id(c) for c in cands}
    assert all(id(c) in ids for c in kept)


@given(points)
def test_prune_dominated_covers_input(raw):
    """Every dropped candidate is dominated by some kept candidate."""
    cands = sorted_candidates(raw)
    kept = prune_dominated(cands)
    for candidate in cands:
        assert any(k.dominates(candidate) for k in kept)


@given(points)
def test_prune_dominated_idempotent(raw):
    once = prune_dominated(sorted_candidates(raw))
    twice = prune_dominated(list(once))
    assert [(c.q, c.c) for c in once] == [(c.q, c.c) for c in twice]


@given(points)
def test_convex_prune_output_convex(raw):
    nonredundant = prune_dominated(sorted_candidates(raw))
    assert is_convex(convex_prune(nonredundant))


@given(points)
def test_convex_prune_idempotent(raw):
    nonredundant = prune_dominated(sorted_candidates(raw))
    once = convex_prune(nonredundant)
    assert convex_prune(once) == once


@given(points, st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_hull_attains_same_max_for_any_resistance(raw, resistance):
    """Lemma 3 as a property: max(q - R c) is achieved on the hull."""
    nonredundant = prune_dominated(sorted_candidates(raw))
    hull = convex_prune(nonredundant)
    full_best = max(c.q - resistance * c.c for c in nonredundant)
    hull_best = max(c.q - resistance * c.c for c in hull)
    assert hull_best >= full_best - 1e-9 * max(1.0, abs(full_best))


@given(points)
def test_hull_endpoints_survive(raw):
    """The min-c and max-c nonredundant candidates are always hull points."""
    nonredundant = prune_dominated(sorted_candidates(raw))
    hull = convex_prune(nonredundant)
    assert hull[0] is nonredundant[0]
    assert hull[-1] is nonredundant[-1]


@settings(max_examples=50)
@given(points)
def test_hull_walk_monotone_argmax(raw):
    """Lemma 1 as a property: as R decreases, the (min-c) argmax of
    q - R c over the hull moves toward larger c."""
    nonredundant = prune_dominated(sorted_candidates(raw))
    hull = convex_prune(nonredundant)

    def argmax_index(resistance):
        best, best_value = 0, float("-inf")
        for i, cand in enumerate(hull):
            value = cand.q - resistance * cand.c
            if value > best_value:
                best, best_value = i, value
        return best

    resistances = [100.0, 10.0, 1.0, 0.1, 0.0]
    indices = [argmax_index(r) for r in resistances]
    assert indices == sorted(indices)
