"""Partitioned parallel solve tests: planning, parity, pool routing.

The headline contract is the repo-wide one: a partitioned solve —
cut, dispatch, splice — returns the *bit-identical* result of the
serial solve, on every algorithm, backend and library shape.  The
parity corpus runs the real splice path with inline dispatch
(``jobs=1`` plus a precomputed plan), so it is cheap enough to sweep;
a smaller set of tests exercises real worker processes through
:class:`~repro.core.batch.SolverPool`.
"""

import pickle

import pytest

from repro import (
    Driver,
    RoutingTree,
    SolverPool,
    compile_net,
    insert_buffers,
    paper_library,
    random_tree_net,
    uniform_random_library,
)
from repro.errors import AlgorithmError
from repro.parallel import (
    DEFAULT_PARALLEL_THRESHOLD,
    plan_partitions,
    solve_partitioned,
)
from repro.tree.builders import star_net, two_pin_net
from repro.tree.segmenting import segment_to_position_count
from repro.units import fF, ps


def assert_identical(result, reference):
    """Bit-identical: slack, assignment, load and DP accounting."""
    assert result.slack == reference.slack
    assert result.assignment == reference.assignment
    assert result.driver_load == reference.driver_load
    assert result.stats.root_candidates == reference.stats.root_candidates
    assert result.stats.peak_list_length == reference.stats.peak_list_length
    assert (result.stats.candidates_generated
            == reference.stats.candidates_generated)
    assert result.stats.algorithm == reference.stats.algorithm
    assert result.stats.backend == reference.stats.backend


def random_net(seed, sinks=24, positions=800):
    base = random_tree_net(
        sinks, seed=seed, required_arrival=(ps(400.0), ps(2500.0)),
        driver=Driver(resistance=200.0),
    )
    return segment_to_position_count(base, positions)


def mixed_polarity_net(seed, sinks=16):
    """A branchy net whose sinks alternate polarity.

    The plain compiled DP ignores polarity, so the partitioned and the
    serial pipeline must agree on these nets exactly as on all-positive
    ones — this guards the subschedule extraction against accidentally
    consulting sink metadata it must not.
    """
    import random

    rng = random.Random(seed)
    tree = RoutingTree.with_source(driver=Driver(resistance=180.0))
    spine = tree.root_id
    for index in range(sinks):
        spine = tree.add_internal(
            spine, rng.uniform(20.0, 120.0), fF(rng.uniform(5.0, 40.0))
        )
        arm = spine
        for _ in range(rng.randrange(8, 16)):
            arm = tree.add_internal(
                arm, rng.uniform(10.0, 80.0), fF(rng.uniform(3.0, 25.0))
            )
        tree.add_sink(
            arm, rng.uniform(10.0, 60.0), fF(rng.uniform(2.0, 20.0)),
            capacitance=fF(rng.uniform(5.0, 30.0)),
            required_arrival=ps(rng.uniform(400.0, 1800.0)),
            polarity=1 if index % 2 == 0 else -1,
        )
    tree.validate()
    return tree


@pytest.fixture(scope="module")
def library():
    return paper_library(4)


@pytest.fixture(scope="module")
def medium_net():
    return random_net(11, sinks=48, positions=3000)


class TestPlanning:
    def test_random_net_plan_is_viable_and_balanced(self, medium_net, library):
        compiled = compile_net(medium_net, library)
        plan = plan_partitions(compiled, 4)
        assert plan.viable
        assert len(plan.cuts) >= 2
        assert 0.5 <= plan.coverage <= 1.0
        assert plan.covered_instructions == sum(c.size for c in plan.cuts)
        previous_end = -1
        for cut in plan.cuts:  # disjoint, sorted, sized to target
            assert cut.start > previous_end
            assert cut.final == compiled.final_of_node[cut.node_id]
            assert cut.start == compiled.start_of_node[cut.node_id]
            assert 64 <= cut.size <= plan.target
            previous_end = cut.final

    def test_chain_schedule_is_not_viable(self, library):
        chain = two_pin_net(
            length=4000.0, sink_capacitance=fF(20.0),
            required_arrival=ps(900.0),
            driver=Driver(resistance=180.0), num_segments=400,
        )
        plan = plan_partitions(compile_net(chain, library), 4)
        assert not plan.viable
        assert "chain" in plan.reason

    def test_single_worker_is_not_viable(self, medium_net, library):
        plan = plan_partitions(compile_net(medium_net, library), 1)
        assert not plan.viable
        assert "fewer than two workers" in plan.reason

    def test_unpickled_schedule_cannot_be_planned(self, medium_net, library):
        compiled = pickle.loads(pickle.dumps(compile_net(medium_net, library)))
        with pytest.raises(AlgorithmError, match="unpickled"):
            plan_partitions(compiled, 4)

    def test_low_coverage_reported(self, medium_net, library):
        compiled = compile_net(medium_net, library)
        # An absurd cut floor leaves everything in the residual.
        plan = plan_partitions(
            compiled, 4, min_instructions=len(compiled.ops)
        )
        assert not plan.viable


class TestSubschedule:
    def test_extract_matches_cut_range(self, medium_net, library):
        compiled = compile_net(medium_net, library)
        plan = plan_partitions(compiled, 4)
        cut = plan.cuts[0]
        sub = compiled.subschedule(cut.node_id)
        assert len(sub.ops) == cut.size
        assert sub.library is compiled.library
        start, final = compiled.instruction_range(cut.node_id)
        assert (start, final) == (cut.start, cut.final)

    def test_instruction_range_unknown_node(self, medium_net, library):
        compiled = compile_net(medium_net, library)
        with pytest.raises(AlgorithmError):
            compiled.instruction_range(10**9)

    def test_extract_survives_pickling(self, medium_net, library):
        compiled = compile_net(medium_net, library)
        cut = plan_partitions(compiled, 4).cuts[0]
        sub = pickle.loads(pickle.dumps(compiled.subschedule(cut.node_id)))
        assert len(sub.ops) == cut.size


class TestParityCorpus:
    """Partitioned == serial, bit for bit, across the context matrix.

    Inline dispatch (``jobs=1`` + a precomputed 4-worker plan) runs the
    identical cut/splice code path without process overhead.
    """

    @pytest.mark.parametrize("algorithm", ["fast", "lillis", "van_ginneken"])
    @pytest.mark.parametrize("backend", ["object", "soa"])
    def test_algorithms_and_backends(self, algorithm, backend, library):
        pytest.importorskip("numpy") if backend == "soa" else None
        if algorithm == "van_ginneken":  # single-buffer algorithm
            library = paper_library(1)
        for seed in (0, 1, 2):
            compiled = compile_net(random_net(seed), library)
            plan = plan_partitions(compiled, 4, min_instructions=16)
            assert plan.viable, plan.reason
            result = solve_partitioned(
                compiled, library, algorithm=algorithm, backend=backend,
                jobs=1, plan=plan,
            )
            reference = insert_buffers(
                compiled, library, algorithm=algorithm, backend=backend
            )
            assert_identical(result, reference)

    @pytest.mark.parametrize("size", [1, 3, 8])
    def test_library_sizes(self, size):
        library = uniform_random_library(size, seed=size)
        compiled = compile_net(random_net(5, sinks=20, positions=600), library)
        plan = plan_partitions(compiled, 4, min_instructions=16)
        assert plan.viable, plan.reason
        result = solve_partitioned(
            compiled, library, jobs=1, plan=plan
        )
        assert_identical(result, insert_buffers(compiled, library))

    @pytest.mark.parametrize("backend", ["object", "soa"])
    def test_mixed_polarity_sinks(self, backend, library):
        for seed in (3, 4):
            net = mixed_polarity_net(seed)
            compiled = compile_net(net, library)
            plan = plan_partitions(compiled, 4, min_instructions=8)
            assert plan.viable, plan.reason
            result = solve_partitioned(
                compiled, library, backend=backend, jobs=1, plan=plan
            )
            reference = insert_buffers(compiled, library, backend=backend)
            assert_identical(result, reference)

    def test_report_is_filled(self, medium_net, library):
        compiled = compile_net(medium_net, library)
        plan = plan_partitions(compiled, 4)
        report = {}
        solve_partitioned(compiled, library, jobs=1, plan=plan, report=report)
        assert report["engaged"]
        assert report["partitions"] == len(plan.cuts)
        assert report["coverage"] == plan.coverage
        assert len(report["cut_depths"]) == len(plan.cuts)
        assert report["total_instructions"] == len(compiled.ops)


class TestEdgeCases:
    def test_cut_at_driver_child(self, library):
        """Star topology: every cut is a direct child of the root."""
        star = star_net(
            6, arm_length=900.0, required_arrival=ps(1200.0),
            driver=Driver(resistance=200.0),
        )
        star = segment_to_position_count(star, 300)
        compiled = compile_net(star, library)
        plan = plan_partitions(compiled, 2, min_instructions=8)
        assert plan.viable, plan.reason
        assert all(cut.depth == 1 for cut in plan.cuts)
        result = solve_partitioned(compiled, library, jobs=1, plan=plan)
        assert_identical(result, insert_buffers(compiled, library))

    def test_single_sink_partitions(self, library):
        """min_instructions=1 admits leaf-sized cuts (a lone SINK+FINAL)."""
        star = star_net(
            8, arm_length=40.0, required_arrival=ps(800.0),
            driver=Driver(resistance=200.0),
        )
        compiled = compile_net(star, library)
        plan = plan_partitions(
            compiled, 2, min_instructions=1, min_coverage=0.0
        )
        assert plan.viable, plan.reason
        assert min(cut.size for cut in plan.cuts) <= 4
        result = solve_partitioned(compiled, library, jobs=1, plan=plan)
        assert_identical(result, insert_buffers(compiled, library))

    def test_degenerate_chain_falls_back_serially(self, library):
        chain = two_pin_net(
            length=3000.0, sink_capacitance=fF(15.0),
            required_arrival=ps(800.0),
            driver=Driver(resistance=150.0), num_segments=300,
        )
        report = {}
        result = solve_partitioned(
            chain, library, jobs=2, report=report
        )
        assert not report["engaged"]
        assert "chain" in report["reason"]
        assert_identical(result, insert_buffers(chain, library))

    def test_one_job_without_plan_falls_back(self, medium_net, library):
        report = {}
        result = solve_partitioned(
            medium_net, library, jobs=1, report=report
        )
        assert not report["engaged"]
        assert "fewer than two workers" in report["reason"]
        assert_identical(result, insert_buffers(medium_net, library))


class TestSolverPoolRouting:
    def test_invalid_policy_rejected(self, library):
        with pytest.raises(ValueError, match="parallel"):
            SolverPool(library, parallel="sometimes")

    def test_pool_partitioned_solve_bit_identical(self, medium_net, library):
        reference = insert_buffers(medium_net, library)
        with SolverPool(
            library, jobs=2, parallel="always", policy="static"
        ) as pool:
            first = pool.solve([medium_net])[0]
            second = pool.solve([medium_net])[0]  # pool reuse
            stats = pool.parallel_stats()
        assert_identical(first, reference)
        assert_identical(second, reference)
        assert stats["parallel_solves"] == 2
        assert stats["partitions_total"] >= 4
        assert stats["last"]["engaged"]
        assert stats["last"]["pool_utilization"] > 0.0

    def test_auto_threshold_keeps_small_nets_serial(self, library):
        small = random_net(9, sinks=12, positions=200)
        with SolverPool(library, jobs=2, parallel="auto") as pool:
            result = pool.solve([small])[0]
            stats = pool.parallel_stats()
        assert stats["parallel_solves"] == 0
        assert stats["fallback_solves"] == 0
        assert stats["threshold_instructions"] == DEFAULT_PARALLEL_THRESHOLD
        assert_identical(result, insert_buffers(small, library))

    def test_custom_threshold_routes_small_nets(self, library):
        small = random_net(9, sinks=12, positions=400)
        with SolverPool(
            library, jobs=2, parallel="auto", parallel_threshold=100
        ) as pool:
            result = pool.solve([small])[0]
            stats = pool.parallel_stats()
        assert stats["parallel_solves"] + stats["fallback_solves"] == 1
        assert_identical(result, insert_buffers(small, library))

    def test_parallel_never_disables_routing(self, medium_net, library):
        with SolverPool(
            library, jobs=2, parallel="never", policy="static"
        ) as pool:
            result = pool.solve([medium_net])[0]
            stats = pool.parallel_stats()
        assert not stats["enabled"]
        assert stats["parallel_solves"] == 0
        assert_identical(result, insert_buffers(medium_net, library))

    def test_mixed_batch_routes_only_large_nets(self, medium_net, library):
        small = [random_net(seed, sinks=8, positions=60) for seed in (20, 21)]
        nets = [small[0], medium_net, small[1]]
        references = [insert_buffers(net, library) for net in nets]
        with SolverPool(
            library, jobs=2, parallel="auto", parallel_threshold=2000
        ) as pool:
            results = pool.solve(nets)
            stats = pool.parallel_stats()
        for result, reference in zip(results, references):
            assert_identical(result, reference)
        assert stats["parallel_solves"] + stats["fallback_solves"] == 1

    def test_closed_pool_refuses_work(self, library):
        pool = SolverPool(
            library, jobs=2, parallel="always", policy="static"
        )
        pool.close()
        with pytest.raises(RuntimeError):
            pool.solve([random_net(1, sinks=8, positions=60)])
