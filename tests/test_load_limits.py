"""Buffer max-load constraint tests."""

import itertools

import pytest

from helpers import SLACK_ATOL

from repro import (
    BufferLibrary,
    BufferType,
    Driver,
    evaluate_assignment,
    evaluate_slack,
    insert_buffers,
    insert_buffers_brute_force,
    two_pin_net,
)
from repro.errors import LibraryError, TimingError
from repro.units import fF, ps


def limited(name, r, c, k, max_load):
    return BufferType(name, r, c, k, max_load=max_load)


@pytest.fixture
def net():
    return two_pin_net(length=6000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(900.0), driver=Driver(200.0),
                       num_segments=10)


def test_max_load_validation():
    with pytest.raises(LibraryError):
        limited("x", 100.0, fF(1.0), ps(10.0), max_load=0.0)
    with pytest.raises(LibraryError):
        limited("x", 100.0, fF(1.0), ps(10.0), max_load=-fF(1.0))


def test_oracle_rejects_overloaded_buffer(net):
    tight = limited("tight", 100.0, fF(1.0), ps(10.0), max_load=fF(0.1))
    position = net.buffer_positions()[0].node_id
    with pytest.raises(TimingError):
        evaluate_assignment(net, {position: tight})


def test_oracle_can_measure_anyway(net):
    tight = limited("tight", 100.0, fF(1.0), ps(10.0), max_load=fF(0.1))
    position = net.buffer_positions()[0].node_id
    report = evaluate_assignment(net, {position: tight},
                                 enforce_load_limits=False)
    assert report.num_buffers == 1


def test_unconstrained_limit_matches_plain(net):
    """A max_load larger than any possible load changes nothing."""
    loose = [
        BufferType(f"b{i}", r, fF(c), ps(30.0), max_load=1.0)  # 1 farad!
        for i, (r, c) in enumerate([(3000.0, 2.0), (800.0, 8.0), (200.0, 20.0)])
    ]
    plain = [
        BufferType(f"b{i}", b.driving_resistance, b.input_capacitance,
                   b.intrinsic_delay)
        for i, b in enumerate(loose)
    ]
    constrained = insert_buffers(net, BufferLibrary(loose))
    unconstrained = insert_buffers(net, BufferLibrary(plain))
    assert constrained.slack == pytest.approx(unconstrained.slack,
                                              abs=SLACK_ATOL)


def test_binding_limit_changes_solution(net):
    """A tight limit must produce a feasible (oracle-accepted) solution
    that is no better than the unconstrained one."""
    free = BufferType("free", 400.0, fF(6.0), ps(30.0))
    capped = BufferType("capped", 400.0, fF(6.0), ps(30.0),
                        max_load=fF(120.0))
    free_result = insert_buffers(net, BufferLibrary([free]))
    capped_result = insert_buffers(net, BufferLibrary([capped]))
    assert capped_result.slack <= free_result.slack + SLACK_ATOL
    # Feasibility: the oracle (which enforces limits) accepts it.
    report = evaluate_assignment(net, capped_result.assignment)
    assert report.slack == pytest.approx(capped_result.slack, rel=1e-12)


@pytest.mark.parametrize("algorithm", ["fast", "lillis"])
def test_fast_and_lillis_agree_under_limits(net, algorithm):
    library = BufferLibrary([
        limited("a", 2000.0, fF(2.0), ps(28.0), max_load=fF(200.0)),
        limited("b", 600.0, fF(7.0), ps(31.0), max_load=fF(350.0)),
        BufferType("c", 250.0, fF(18.0), ps(34.0)),
    ])
    fast = insert_buffers(net, library, algorithm="fast")
    lillis = insert_buffers(net, library, algorithm="lillis")
    assert fast.slack == pytest.approx(lillis.slack, abs=SLACK_ATOL)


def test_matches_brute_force_with_limits():
    net = two_pin_net(length=3000.0, sink_capacitance=fF(20.0),
                      required_arrival=ps(900.0), driver=Driver(200.0),
                      num_segments=5)
    library = BufferLibrary([
        limited("a", 1200.0, fF(3.0), ps(28.0), max_load=fF(150.0)),
        limited("b", 400.0, fF(9.0), ps(32.0), max_load=fF(300.0)),
    ])
    exact = insert_buffers_brute_force(net, library)
    dp = insert_buffers(net, library)
    assert dp.slack == pytest.approx(exact.slack, rel=1e-12)


def test_interior_candidate_under_limit():
    """The regression the hull shortcut would get wrong: the constrained
    optimum sits strictly inside the hull, so constrained types must
    scan the full list (see generate_fast docstring)."""
    from helpers import make_candidates
    from repro.core.buffer_ops import BufferPlan, generate_fast, generate_lillis
    from repro.core.pruning import convex_prune, prune_dominated

    # Hull of {A(0,0), P(4.9,5), B(10,10)} is {A, B}; P is interior.
    cands = prune_dominated(make_candidates([(0.0, 0.0), (4.9, 5.0), (10.0, 10.0)]))
    assert len(convex_prune(cands)) == 2
    capped = BufferType("capped", 1e-9, 0.0, 0.0, max_load=5.0)
    plan = BufferPlan(0, [capped])
    fast = generate_fast(cands, plan)
    lillis = generate_lillis(cands, plan)
    # Eligible candidates: A and P; best is P (q=4.9).
    assert fast[0].q == pytest.approx(4.9, abs=1e-6)
    assert lillis[0].q == pytest.approx(fast[0].q)


def test_undrivable_everywhere_means_no_insertion():
    net = two_pin_net(length=6000.0, sink_capacitance=fF(20.0),
                      required_arrival=ps(900.0), driver=Driver(200.0),
                      num_segments=6)
    hopeless = limited("hopeless", 100.0, fF(1.0), ps(5.0), max_load=fF(0.01))
    result = insert_buffers(net, BufferLibrary([hopeless]))
    assert result.assignment == {}
    assert result.slack == pytest.approx(
        evaluate_slack(net), abs=SLACK_ATOL
    )


def test_dominates_respects_max_load():
    free = BufferType("free", 100.0, fF(1.0), ps(10.0))
    capped = BufferType("capped", 100.0, fF(1.0), ps(10.0), max_load=fF(10.0))
    assert free.dominates(capped)
    assert not capped.dominates(free)
    looser = BufferType("looser", 100.0, fF(1.0), ps(10.0), max_load=fF(20.0))
    assert looser.dominates(capped)
    assert not capped.dominates(looser)
