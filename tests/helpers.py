"""Shared non-fixture helpers for the test suite.

Kept separate from ``conftest.py`` so test modules can import them by an
unambiguous module name (``from helpers import ...``): ``conftest`` is a
pytest-managed name that exists once per collected directory, so under a
rootdir that also contains ``benchmarks/conftest.py`` a plain
``import conftest`` can resolve to the wrong file depending on
collection order.  ``helpers`` exists only here.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro import Driver, RoutingTree
from repro.core.candidate import Candidate, SinkDecision
from repro.units import fF, ps

#: Tolerance for slack comparisons in seconds (sub-femtosecond).
SLACK_ATOL = 1e-16


def make_candidates(points: Sequence[Tuple[float, float]]) -> List[Candidate]:
    """Candidates from raw (q, c) pairs with dummy sink decisions."""
    return [Candidate(q=q, c=c, decision=SinkDecision(i)) for i, (q, c) in enumerate(points)]


def qc(candidates: Sequence[Candidate]) -> List[Tuple[float, float]]:
    """The (q, c) pairs of a candidate list, for equality assertions."""
    return [(cand.q, cand.c) for cand in candidates]


def random_small_tree(seed: int, max_extra: int = 3) -> RoutingTree:
    """A random tree with <= ~7 buffer positions, for oracle tests.

    The shape mixes chains and branches so merges happen above buffer
    positions (the structurally interesting case).
    """
    rng = random.Random(seed)
    tree = RoutingTree.with_source(driver=Driver(rng.uniform(100.0, 800.0)))

    def wire() -> Tuple[float, float]:
        return rng.uniform(5.0, 400.0), fF(rng.uniform(2.0, 60.0))

    def sink(parent: int) -> None:
        r, c = wire()
        tree.add_sink(
            parent,
            r,
            c,
            capacitance=fF(rng.uniform(2.0, 41.0)),
            required_arrival=ps(rng.uniform(0.0, 1500.0)),
        )

    # A short chain off the source, then a branch, then short chains.
    r, c = wire()
    node = tree.add_internal(tree.root_id, r, c)
    for _ in range(rng.randrange(max_extra)):
        r, c = wire()
        node = tree.add_internal(node, r, c)
    branches = rng.choice([1, 2, 2, 3])
    for _ in range(branches):
        child = node
        for _ in range(rng.randrange(1, 3)):
            r, c = wire()
            child = tree.add_internal(child, r, c)
        sink(child)
    tree.validate()
    return tree
