"""Shared non-fixture helpers for the test suite.

Kept separate from ``conftest.py`` so test modules can import them by an
unambiguous module name (``from helpers import ...``): ``conftest`` is a
pytest-managed name that exists once per collected directory, so under a
rootdir that also contains ``benchmarks/conftest.py`` a plain
``import conftest`` can resolve to the wrong file depending on
collection order.  ``helpers`` exists only here.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro import Driver, RoutingTree
from repro.core.candidate import Candidate, SinkDecision
from repro.units import fF, ps

#: Tolerance for slack comparisons in seconds (sub-femtosecond).
SLACK_ATOL = 1e-16


def make_candidates(points: Sequence[Tuple[float, float]]) -> List[Candidate]:
    """Candidates from raw (q, c) pairs with dummy sink decisions."""
    return [Candidate(q=q, c=c, decision=SinkDecision(i)) for i, (q, c) in enumerate(points)]


def qc(candidates: Sequence[Candidate]) -> List[Tuple[float, float]]:
    """The (q, c) pairs of a candidate list, for equality assertions."""
    return [(cand.q, cand.c) for cand in candidates]


def relabeled(
    tree: RoutingTree, rename: bool = True, reverse_children: bool = False
) -> RoutingTree:
    """A structurally identical tree with new names and/or child order.

    Rebuilt through the tree API, so node ids are reassigned too: attach
    order is child order, and reversing it at every vertex exercises the
    canonicalization's sibling sort (tests for :mod:`repro.service`).
    """
    twin = RoutingTree.with_source(driver=tree.driver)
    mapping = {tree.root_id: twin.root_id}
    stack = [tree.root_id]
    counter = 0
    while stack:
        node_id = stack.pop()
        children = tree.children_of(node_id)
        if reverse_children:
            children = tuple(reversed(children))
        for child_id in children:
            node = tree.node(child_id)
            edge = tree.edge_to(child_id)
            counter += 1
            name = f"renamed_{counter * 31 + 7}" if rename else node.name
            if node.is_sink:
                mapping[child_id] = twin.add_sink(
                    mapping[node_id], edge.resistance, edge.capacitance,
                    capacitance=node.capacitance,
                    required_arrival=node.required_arrival,
                    name=name, polarity=node.polarity,
                )
            else:
                mapping[child_id] = twin.add_internal(
                    mapping[node_id], edge.resistance, edge.capacitance,
                    buffer_position=node.is_buffer_position,
                    allowed_buffers=node.allowed_buffers,
                    name=name,
                )
            stack.append(child_id)
    return twin


def random_small_tree(seed: int, max_extra: int = 3) -> RoutingTree:
    """A random tree with <= ~7 buffer positions, for oracle tests.

    The shape mixes chains and branches so merges happen above buffer
    positions (the structurally interesting case).
    """
    rng = random.Random(seed)
    tree = RoutingTree.with_source(driver=Driver(rng.uniform(100.0, 800.0)))

    def wire() -> Tuple[float, float]:
        return rng.uniform(5.0, 400.0), fF(rng.uniform(2.0, 60.0))

    def sink(parent: int) -> None:
        r, c = wire()
        tree.add_sink(
            parent,
            r,
            c,
            capacitance=fF(rng.uniform(2.0, 41.0)),
            required_arrival=ps(rng.uniform(0.0, 1500.0)),
        )

    # A short chain off the source, then a branch, then short chains.
    r, c = wire()
    node = tree.add_internal(tree.root_id, r, c)
    for _ in range(rng.randrange(max_extra)):
        r, c = wire()
        node = tree.add_internal(node, r, c)
    branches = rng.choice([1, 2, 2, 3])
    for _ in range(branches):
        child = node
        for _ in range(rng.randrange(1, 3)):
            r, c = wire()
            child = tree.add_internal(child, r, c)
        sink(child)
    tree.validate()
    return tree
