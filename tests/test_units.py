"""Unit-helper sanity tests."""

import math

from repro import units


def test_femto_farad_round_trip():
    assert math.isclose(units.to_fF(units.fF(23.0)), 23.0)


def test_pico_second_round_trip():
    assert math.isclose(units.to_ps(units.ps(36.4)), 36.4)


def test_ns_is_thousand_ps():
    assert math.isclose(units.ns(1.0), units.ps(1000.0))


def test_pf_is_thousand_ff():
    assert math.isclose(units.pF(1.0), units.fF(1000.0))


def test_kohm():
    assert units.kohm(7.0) == 7000.0


def test_ohm_identity():
    assert units.ohm(180.0) == 180.0


def test_tsmc180_constants_match_paper():
    # Section 4: 0.076 ohm/um and 0.118 fF/um.
    assert units.TSMC180_WIRE_RES_PER_UM == 0.076
    assert math.isclose(units.to_fF(units.TSMC180_WIRE_CAP_PER_UM), 0.118)


def test_elmore_unit_consistency():
    # ohms times farads is seconds: a 1 kohm driver into 1 pF is 1 ns.
    assert math.isclose(units.kohm(1.0) * units.pF(1.0), units.ns(1.0))
