"""Polarity-aware insertion tests (inverters + sink polarities)."""

import itertools
import random

import pytest

from helpers import SLACK_ATOL

from repro import (
    BufferLibrary,
    BufferType,
    Driver,
    RoutingTree,
    evaluate_slack,
    insert_buffers,
    insert_buffers_with_inverters,
    mixed_paper_library,
    paper_library,
    two_pin_net,
    verify_polarities,
)
from repro.errors import AlgorithmError, InfeasibleError, TreeError
from repro.units import fF, ps


def inverter(name="inv", r=800.0, c=fF(4.0), k=ps(25.0)):
    return BufferType(name, r, c, k, inverting=True)


def buffer_(name="buf", r=800.0, c=fF(5.0), k=ps(30.0)):
    return BufferType(name, r, c, k)


def chain_net(polarity=1, segments=8):
    net = RoutingTree.with_source(driver=Driver(250.0))
    parent = net.root_id
    for _ in range(segments - 1):
        parent = net.add_internal(parent, 60.0, fF(20.0))
    net.add_sink(parent, 60.0, fF(20.0), capacitance=fF(15.0),
                 required_arrival=ps(800.0), polarity=polarity)
    net.validate()
    return net


def brute_force_polarity(tree, library, driver=None):
    """Exhaustive polarity-respecting oracle for tiny instances."""
    positions = [n.node_id for n in tree.buffer_positions()]
    best = float("-inf")
    choices = [None] + list(library.buffers)
    for combo in itertools.product(choices, repeat=len(positions)):
        assignment = {
            pos: buf for pos, buf in zip(positions, combo) if buf is not None
        }
        if not verify_polarities(tree, assignment):
            continue
        slack = evaluate_slack(tree, assignment, driver)
        best = max(best, slack)
    return best


class TestModel:
    def test_sink_polarity_validation(self):
        with pytest.raises(TreeError):
            RoutingTree.with_source().add_sink(
                0, 1.0, 0.0, capacitance=0.0, required_arrival=0.0, polarity=0
            )

    def test_internal_cannot_be_negative(self):
        from repro.tree.node import Node, NodeKind

        with pytest.raises(TreeError):
            Node(1, NodeKind.INTERNAL, polarity=-1)

    def test_inverting_flag_in_str(self):
        assert "[INV]" in str(inverter())
        assert "[BUF]" in str(buffer_())

    def test_inverter_never_dominates_buffer(self):
        strong_inv = inverter(r=100.0, c=fF(1.0), k=ps(1.0))
        weak_buf = buffer_(r=9000.0, c=fF(50.0), k=ps(50.0))
        assert not strong_inv.dominates(weak_buf)
        assert not weak_buf.dominates(strong_inv)


class TestVerifyPolarities:
    def test_empty_assignment_positive_sinks(self):
        net = chain_net(polarity=1)
        assert verify_polarities(net, {})

    def test_empty_assignment_negative_sink_fails(self):
        net = chain_net(polarity=-1)
        assert not verify_polarities(net, {})

    def test_single_inverter_fixes_negative_sink(self):
        net = chain_net(polarity=-1)
        position = net.buffer_positions()[0].node_id
        assert verify_polarities(net, {position: inverter()})

    def test_two_inverters_cancel(self):
        net = chain_net(polarity=1, segments=6)
        a, b = (n.node_id for n in net.buffer_positions()[:2])
        assert verify_polarities(net, {a: inverter(), b: inverter("inv2")})

    def test_non_inverting_buffer_neutral(self):
        net = chain_net(polarity=1)
        position = net.buffer_positions()[0].node_id
        assert verify_polarities(net, {position: buffer_()})


class TestInsertion:
    def test_all_positive_matches_plain_algorithm(self):
        """With only non-inverting types and positive sinks, the
        polarity DP must reduce exactly to the plain one."""
        net = two_pin_net(length=6000.0, sink_capacitance=fF(20.0),
                          required_arrival=ps(900.0), driver=Driver(200.0),
                          num_segments=12)
        library = paper_library(4)
        plain = insert_buffers(net, library)
        polarity = insert_buffers_with_inverters(net, library)
        assert polarity.slack == pytest.approx(plain.slack, abs=SLACK_ATOL)

    def test_negative_sink_requires_inverter(self):
        net = chain_net(polarity=-1)
        with pytest.raises(InfeasibleError):
            insert_buffers_with_inverters(net, BufferLibrary([buffer_()]))

    def test_negative_sink_solved_with_inverter(self):
        net = chain_net(polarity=-1)
        library = BufferLibrary([buffer_(), inverter()])
        result = insert_buffers_with_inverters(net, library)
        assert verify_polarities(net, result.assignment)
        inverters_used = sum(
            1 for b in result.assignment.values() if b.inverting
        )
        assert inverters_used % 2 == 1

    def test_positive_sink_uses_even_inverters(self):
        net = chain_net(polarity=1)
        library = BufferLibrary([inverter()])  # only inverters available
        result = insert_buffers_with_inverters(net, library)
        assert sum(1 for b in result.assignment.values() if b.inverting) % 2 == 0
        assert verify_polarities(net, result.assignment)

    def test_slack_verified_by_oracle(self):
        net = chain_net(polarity=-1, segments=10)
        library = mixed_paper_library(6)
        result = insert_buffers_with_inverters(net, library)
        measured = evaluate_slack(net, result.assignment)
        assert measured == pytest.approx(result.slack, rel=1e-12)
        assert verify_polarities(net, result.assignment)

    def test_fast_equals_lillis_mode(self):
        net = chain_net(polarity=-1, segments=14)
        library = mixed_paper_library(8)
        fast = insert_buffers_with_inverters(net, library, algorithm="fast")
        lillis = insert_buffers_with_inverters(net, library, algorithm="lillis")
        assert fast.slack == pytest.approx(lillis.slack, abs=SLACK_ATOL)

    def test_unknown_algorithm(self):
        net = chain_net()
        with pytest.raises(AlgorithmError):
            insert_buffers_with_inverters(net, mixed_paper_library(2),
                                          algorithm="magic")

    def test_stats_labeled(self):
        net = chain_net()
        result = insert_buffers_with_inverters(net, mixed_paper_library(4))
        assert result.stats.algorithm == "fast-inverters"


class TestMixedPolaritySinks:
    def build(self, seed=0):
        """A branch with one positive and one negative sink."""
        rng = random.Random(seed)
        net = RoutingTree.with_source(driver=Driver(rng.uniform(100, 600)))
        trunk = net.add_internal(0, 80.0, fF(25.0))
        fork = net.add_internal(trunk, 80.0, fF(25.0))
        for polarity in (1, -1):
            leg = net.add_internal(fork, 50.0, fF(15.0))
            net.add_sink(leg, 50.0, fF(15.0), capacitance=fF(12.0),
                         required_arrival=ps(rng.uniform(400, 900)),
                         polarity=polarity)
        net.validate()
        return net

    def test_solves_and_verifies(self):
        net = self.build()
        library = mixed_paper_library(6)
        result = insert_buffers_with_inverters(net, library)
        assert verify_polarities(net, result.assignment)
        assert evaluate_slack(net, result.assignment) == pytest.approx(
            result.slack, rel=1e-12
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        net = self.build(seed)
        library = BufferLibrary([
            buffer_("b1", r=1500.0, c=fF(3.0)),
            inverter("i1", r=900.0, c=fF(4.0)),
        ])
        exact = brute_force_polarity(net, library)
        result = insert_buffers_with_inverters(net, library)
        assert result.slack == pytest.approx(exact, rel=1e-12)

    @pytest.mark.parametrize("seed", range(6))
    def test_fast_equals_lillis_on_mixed(self, seed):
        net = self.build(seed + 100)
        library = mixed_paper_library(5, jitter=0.05, seed=seed)
        fast = insert_buffers_with_inverters(net, library, algorithm="fast")
        lillis = insert_buffers_with_inverters(net, library, algorithm="lillis")
        assert fast.slack == pytest.approx(lillis.slack, abs=SLACK_ATOL)

    def test_inverters_can_beat_plain_buffers(self):
        """With inverter-heavy libraries the polarity DP exploits the
        electrically better inverters even for positive sinks."""
        net = two_pin_net(length=12_000.0, sink_capacitance=fF(20.0),
                          required_arrival=ps(1500.0), driver=Driver(250.0),
                          num_segments=24)
        buffers_only = paper_library(4)
        with_inverters = mixed_paper_library(8, inverter_fraction=0.5)
        plain = insert_buffers(net, buffers_only)
        mixed = insert_buffers_with_inverters(net, with_inverters)
        assert mixed.slack >= plain.slack - SLACK_ATOL


class TestIoRoundTrip:
    def test_polarity_survives_serialization(self):
        from repro.tree.io import tree_from_dict, tree_to_dict

        net = chain_net(polarity=-1)
        copy = tree_from_dict(tree_to_dict(net))
        assert copy.sinks()[0].polarity == -1

    def test_inverting_survives_library_serialization(self):
        from repro.tree.io import library_from_dict, library_to_dict

        library = mixed_paper_library(4)
        copy = library_from_dict(library_to_dict(library))
        assert [b.inverting for b in copy] == [b.inverting for b in library]

    def test_polarity_survives_segmenting(self):
        from repro import segment_tree

        net = RoutingTree.with_source()
        net.add_sink(0, 10.0, fF(5.0), capacitance=fF(3.0),
                     required_arrival=0.0, length=500.0, polarity=-1)
        segmented = segment_tree(net, 100.0)
        assert segmented.sinks()[0].polarity == -1
