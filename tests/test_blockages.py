"""Buffer-blockage tests (paper ref [15]: restricted buffer locations)."""

import pytest

from helpers import SLACK_ATOL

from repro import (
    Driver,
    insert_buffers,
    paper_library,
    two_pin_net,
    unbuffered_slack,
)
from repro.errors import TreeError
from repro.tree.blockages import Blockage, apply_blockages, blockage_coverage
from repro.units import fF, ps


@pytest.fixture
def line():
    # Positions at x = 500, 1000, ..., 9500 along a 10 mm line.
    return two_pin_net(length=10_000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(2000.0), driver=Driver(200.0),
                       num_segments=20)


def test_blockage_validation():
    with pytest.raises(TreeError):
        Blockage(10.0, 0.0, 0.0, 5.0)


def test_contains_and_area():
    rect = Blockage(0.0, 0.0, 10.0, 5.0)
    assert rect.contains((5.0, 2.5))
    assert rect.contains((0.0, 0.0))  # edges inclusive
    assert not rect.contains((11.0, 2.5))
    assert rect.area == 50.0


def test_apply_removes_covered_positions(line):
    # Block the middle 2 mm of the line: 4 positions (4500..6500).
    macro = Blockage(4400.0, -10.0, 6600.0, 10.0, name="macro")
    restricted, removed = apply_blockages(line, [macro])
    assert removed == 5  # x = 4500, 5000, 5500, 6000, 6500
    assert restricted.num_buffer_positions == line.num_buffer_positions - 5


def test_apply_preserves_topology_and_timing(line):
    macro = Blockage(4400.0, -10.0, 6600.0, 10.0)
    restricted, _ = apply_blockages(line, [macro])
    assert restricted.num_nodes == line.num_nodes
    assert unbuffered_slack(restricted) == pytest.approx(
        unbuffered_slack(line), abs=SLACK_ATOL
    )


def test_blockage_can_cost_slack(line):
    """Blocking the line's sweet spot must not improve the optimum and
    typically degrades it."""
    library = paper_library(4)
    free = insert_buffers(line, library)
    # Block everything except the first and last position.
    huge = Blockage(900.0, -10.0, 9100.0, 10.0)
    restricted, removed = apply_blockages(line, [huge])
    assert removed > 10
    blocked = insert_buffers(restricted, library)
    assert blocked.slack <= free.slack + SLACK_ATOL
    # No buffer lands inside the blockage.
    for node_id in blocked.assignment:
        x, _ = restricted.node(node_id).position
        assert x < 900.0 or x > 9100.0


def test_empty_blockage_list_is_identity(line):
    restricted, removed = apply_blockages(line, [])
    assert removed == 0
    assert restricted.num_buffer_positions == line.num_buffer_positions


def test_positions_without_geometry_kept():
    from repro import RoutingTree

    tree = RoutingTree.with_source()
    v = tree.add_internal(0, 1.0, fF(1.0))  # no position metadata
    tree.add_sink(v, 1.0, fF(1.0), capacitance=fF(2.0), required_arrival=0.0)
    restricted, removed = apply_blockages(
        tree, [Blockage(-1e9, -1e9, 1e9, 1e9)]
    )
    assert removed == 0
    assert restricted.num_buffer_positions == 1


def test_coverage_fraction(line):
    macro = Blockage(4400.0, -10.0, 6600.0, 10.0)
    coverage = blockage_coverage(line, [macro])
    assert coverage == pytest.approx(5 / line.num_buffer_positions)
    assert blockage_coverage(line, []) == 0.0
