"""CLI (``python -m repro``) tests."""

import json

import pytest

from repro.cli import main


def test_generate_and_buffer_round_trip(tmp_path, capsys):
    net_path = tmp_path / "net.json"
    lib_path = tmp_path / "lib.json"
    out_path = tmp_path / "solution.json"

    assert main([
        "generate", "--net", str(net_path), "--sinks", "12",
        "--positions", "80", "--library", str(lib_path),
        "--library-size", "4",
    ]) == 0
    generated = capsys.readouterr().out
    assert "wrote net" in generated and "wrote library" in generated
    assert net_path.exists() and lib_path.exists()

    assert main([
        "buffer", "--net", str(net_path), "--library", str(lib_path),
        "--algorithm", "fast", "--output", str(out_path),
    ]) == 0
    report = capsys.readouterr().out
    assert "== solution ==" in report
    assert "optimized slack" in report

    payload = json.loads(out_path.read_text())
    assert payload["algorithm"] == "fast"
    assert isinstance(payload["assignment"], dict)
    assert "slack_seconds" in payload


def test_buffer_lillis_agrees_with_fast(tmp_path, capsys):
    net_path = tmp_path / "net.json"
    lib_path = tmp_path / "lib.json"
    main(["generate", "--net", str(net_path), "--sinks", "8",
          "--positions", "50", "--library", str(lib_path),
          "--library-size", "3"])
    capsys.readouterr()

    slacks = {}
    for algorithm in ("fast", "lillis"):
        out_path = tmp_path / f"{algorithm}.json"
        main(["buffer", "--net", str(net_path), "--library", str(lib_path),
              "--algorithm", algorithm, "--output", str(out_path)])
        capsys.readouterr()
        slacks[algorithm] = json.loads(out_path.read_text())["slack_seconds"]
    assert slacks["fast"] == pytest.approx(slacks["lillis"], abs=1e-16)


def test_paper_pseudocode_flag(tmp_path, capsys):
    net_path = tmp_path / "net.json"
    lib_path = tmp_path / "lib.json"
    main(["generate", "--net", str(net_path), "--sinks", "5",
          "--positions", "30", "--library", str(lib_path),
          "--library-size", "2"])
    capsys.readouterr()
    assert main(["buffer", "--net", str(net_path), "--library", str(lib_path),
                 "--paper-pseudocode"]) == 0
    assert "fast-destructive" in capsys.readouterr().out


def test_paper_pseudocode_requires_fast(tmp_path, capsys):
    net_path = tmp_path / "net.json"
    lib_path = tmp_path / "lib.json"
    main(["generate", "--net", str(net_path), "--sinks", "5",
          "--positions", "30", "--library", str(lib_path),
          "--library-size", "2"])
    capsys.readouterr()
    assert main(["buffer", "--net", str(net_path), "--library", str(lib_path),
                 "--algorithm", "lillis", "--paper-pseudocode"]) == 2


def test_show_tree(tmp_path, capsys):
    net_path = tmp_path / "net.json"
    lib_path = tmp_path / "lib.json"
    main(["generate", "--net", str(net_path), "--sinks", "4",
          "--positions", "20", "--library", str(lib_path),
          "--library-size", "2"])
    capsys.readouterr()
    main(["buffer", "--net", str(net_path), "--library", str(lib_path),
          "--show-tree"])
    assert "sink" in capsys.readouterr().out


def test_info(tmp_path, capsys):
    net_path = tmp_path / "net.json"
    main(["generate", "--net", str(net_path), "--sinks", "6",
          "--positions", "40"])
    capsys.readouterr()
    assert main(["info", "--net", str(net_path)]) == 0
    assert "sinks (m):" in capsys.readouterr().out


def test_generate_nothing_is_an_error(capsys):
    assert main(["generate"]) == 2
    assert "nothing to do" in capsys.readouterr().err


def _batch_fixture(tmp_path, capsys):
    net_path = tmp_path / "net.json"
    lib_path = tmp_path / "lib.json"
    main(["generate", "--net", str(net_path), "--sinks", "4",
          "--positions", "20", "--library", str(lib_path),
          "--library-size", "2"])
    capsys.readouterr()
    return net_path, lib_path


def test_batch_round_trip(tmp_path, capsys):
    net_path, lib_path = _batch_fixture(tmp_path, capsys)
    assert main(["batch", "--nets", str(net_path), str(net_path),
                 "--library", str(lib_path)]) == 0
    out = capsys.readouterr().out
    assert "2 nets in" in out


def test_batch_empty_nets_is_a_clean_error(tmp_path, capsys):
    # Regression: an empty --nets list used to fall through to the
    # solver and die with a traceback; now it is a usage error.
    _, lib_path = _batch_fixture(tmp_path, capsys)
    assert main(["batch", "--nets", "--library", str(lib_path)]) == 2
    assert "at least one net file" in capsys.readouterr().err


def test_batch_corners_expands_and_labels(tmp_path, capsys):
    net_path, lib_path = _batch_fixture(tmp_path, capsys)
    out_path = tmp_path / "batch.json"
    assert main(["batch", "--nets", str(net_path),
                 "--library", str(lib_path), "--corners", "5",
                 "--output", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "5 nets in" in out and "corners=5" in out
    for corner in ("tt", "ff", "ss", "fs", "pvt4"):
        assert f"net.json@{corner}" in out

    payload = json.loads(out_path.read_text())
    assert payload["corners"] == 5
    labels = [entry["net"] for entry in payload["results"]]
    assert labels == [f"net.json@{c}"
                      for c in ("tt", "ff", "ss", "fs", "pvt4")]
    # The tt corner is the unscaled net: same answer as a plain batch.
    plain = tmp_path / "plain.json"
    main(["batch", "--nets", str(net_path), "--library", str(lib_path),
          "--output", str(plain)])
    capsys.readouterr()
    baseline = json.loads(plain.read_text())["results"][0]
    assert payload["results"][0]["slack_seconds"] == \
        baseline["slack_seconds"]


def test_batch_negative_corners_is_a_clean_error(tmp_path, capsys):
    net_path, lib_path = _batch_fixture(tmp_path, capsys)
    assert main(["batch", "--nets", str(net_path),
                 "--library", str(lib_path), "--corners", "-1"]) == 2
    assert "--corners must be >= 0" in capsys.readouterr().err


def test_batch_jobs_zero_is_a_clean_error(tmp_path, capsys):
    # Regression: --jobs 0 used to reach multiprocessing setup and
    # traceback; now it is rejected up front with a clear message.
    net_path, lib_path = _batch_fixture(tmp_path, capsys)
    assert main(["batch", "--nets", str(net_path),
                 "--library", str(lib_path), "--jobs", "0"]) == 2
    err = capsys.readouterr().err
    assert "--jobs must be >= 1" in err
    assert main(["batch", "--nets", str(net_path),
                 "--library", str(lib_path), "--jobs", "-2"]) == 2
    assert "--jobs must be >= 1" in capsys.readouterr().err


def test_batch_missing_net_file_is_a_clean_error(tmp_path, capsys):
    net_path, lib_path = _batch_fixture(tmp_path, capsys)
    assert main(["batch", "--nets", str(net_path),
                 str(tmp_path / "missing.json"),
                 "--library", str(lib_path)]) == 2
    err = capsys.readouterr().err
    assert "not found" in err and "missing.json" in err


def test_module_entry_point():
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    # The subprocess inherits the environment, not pytest's in-process
    # sys.path, so point it at whichever tree `repro` was imported from.
    src = str(Path(repro.__file__).parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0
    assert "buffer insertion" in proc.stdout
