"""Batch-axis engine tests: lane parity, grouping, fallbacks.

The engine's contract (:mod:`repro.core.stores.batch_axis`) is that a
group solve is *bit-identical* per lane to solving each net alone on
the compiled-soa path — not approximately equal: every assertion here
is ``==`` on floats.  The corpus deliberately crosses the regimes that
exercise different kernels: uncapped libraries (the hull-free argmax
walk), load caps (per-lane hull selection), destructive pruning
(Convexpruning on real hull rows), single-type van Ginneken, mixed
sink polarities (carried, ignored by the standard DP), and ragged
group sizes where lanes prune to different lengths and some lanes die
early.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from helpers import random_small_tree

from repro import (
    Driver,
    SolverPool,
    compile_net,
    insert_buffers,
    paper_library,
    solve_many,
)
from repro.core.schedule import group_signature, run_compiled_group
from repro.core.stores.batch_axis import BatchedSoAFactory, solve_group
from repro.errors import AlgorithmError
from repro.experiments.workloads import corner_variants, make_corners
from repro.library.buffer_type import BufferType
from repro.library.library import BufferLibrary
from repro.tree.builders import random_tree_net
from repro.tree.segmenting import segment_to_position_count
from repro.units import fF, ps

#: DPStats fields that must match the sequential solve exactly
#: (``runtime_seconds`` is wall-clock and legitimately differs).
STAT_FIELDS = (
    "algorithm",
    "num_buffer_positions",
    "library_size",
    "root_candidates",
    "peak_list_length",
    "candidates_generated",
    "backend",
)


def medium_net(seed: int, sinks: int = 10, positions: int = 120):
    """A segmented random net big enough to prune non-trivially."""
    base = random_tree_net(
        sinks,
        seed=seed,
        required_arrival=(ps(500.0), ps(3000.0)),
        driver=Driver(resistance=180.0),
    )
    return segment_to_position_count(base, positions)


def capped_library():
    """A small library where max-load caps actually bind."""
    return BufferLibrary([
        BufferType("weak", driving_resistance=900.0,
                   input_capacitance=fF(4.0), intrinsic_delay=ps(18.0),
                   max_load=fF(120.0)),
        BufferType("mid", driving_resistance=350.0,
                   input_capacitance=fF(11.0), intrinsic_delay=ps(29.0),
                   max_load=fF(260.0)),
        BufferType("strong", driving_resistance=120.0,
                   input_capacitance=fF(30.0), intrinsic_delay=ps(45.0)),
    ])


def assert_lane_parity(tree, lanes, library, algorithm="fast", **options):
    """Group-solve ``lanes`` corner replicas; assert each lane is
    bit-identical to its own sequential compiled-soa solve."""
    variants = [v for _, v in corner_variants(tree, lanes)]
    compiled = [compile_net(v, library) for v in variants]
    signature = group_signature(compiled[0])
    assert all(group_signature(c) == signature for c in compiled[1:])

    results = run_compiled_group(
        compiled, library, algorithm=algorithm, options=options)
    assert len(results) == lanes
    for net, result in zip(compiled, results):
        reference = insert_buffers(
            net, library, algorithm=algorithm, backend="soa", **options)
        assert result.slack == reference.slack
        assert result.driver_load == reference.driver_load
        assert result.assignment == reference.assignment
        for field in STAT_FIELDS:
            assert getattr(result.stats, field) == getattr(
                reference.stats, field), field
    return results


# -- parity corpus -----------------------------------------------------


@pytest.mark.parametrize("lanes", [2, 5, 16])
def test_fast_corner_parity(lanes):
    assert_lane_parity(medium_net(11), lanes, paper_library(4))


def test_destructive_pruning_parity():
    assert_lane_parity(medium_net(23), 6, paper_library(3),
                       destructive_pruning=True)


def test_lillis_parity():
    assert_lane_parity(medium_net(37, sinks=6, positions=60), 5,
                       paper_library(3), algorithm="lillis")


def test_van_ginneken_parity():
    assert_lane_parity(medium_net(41, sinks=6, positions=60), 4,
                       paper_library(1), algorithm="van_ginneken")


def test_capped_library_parity():
    """Load caps force the per-lane hull path; parity must hold."""
    assert_lane_parity(medium_net(53), 5, capped_library())


def test_capped_destructive_parity():
    assert_lane_parity(medium_net(59), 4, capped_library(),
                       destructive_pruning=True)


def test_polarity_sinks_parity():
    """Mixed sink polarities ride along untouched by the standard DP."""
    base = random_tree_net(8, seed=67, driver=Driver(resistance=150.0))
    for node in base.sinks():
        node.polarity = -1 if node.node_id % 2 else 1
    tree = segment_to_position_count(base, 90)
    assert_lane_parity(tree, 5, paper_library(3))


def test_small_trees_parity():
    """Tiny nets (the oracle corpus) hit the degenerate-width kernels."""
    for seed in range(4):
        assert_lane_parity(random_small_tree(seed), 3, paper_library(2))


def test_randomized_stress():
    """Random shapes x libraries x algorithms x ragged group sizes."""
    rng = random.Random(2005)
    for trial in range(10):
        sinks = rng.randint(2, 12)
        positions = rng.randint(sinks, 100)
        lanes = rng.choice([2, 3, 4, 7, 9])
        algorithm, options, size = rng.choice([
            ("fast", {}, rng.randint(1, 5)),
            ("fast", {"destructive_pruning": True}, rng.randint(1, 4)),
            ("lillis", {}, rng.randint(1, 3)),
            ("van_ginneken", {}, 1),
        ])
        tree = medium_net(rng.randint(0, 10_000), sinks=sinks,
                          positions=positions)
        assert_lane_parity(tree, lanes, paper_library(size),
                           algorithm=algorithm, **options)


# -- grouping and validation ------------------------------------------


def test_corner_variants_share_signature_across_counts():
    tree = medium_net(71, sinks=5, positions=40)
    library = paper_library(2)
    signatures = {
        group_signature(compile_net(v, library))
        for _, v in corner_variants(tree, 7)
    }
    assert len(signatures) == 1
    assert len(make_corners(7)) == 7
    with pytest.raises(ValueError):
        make_corners(0)


def test_mixed_group_rejected():
    library = paper_library(2)
    compiled = [compile_net(random_small_tree(s), library) for s in (0, 1)]
    assert group_signature(compiled[0]) != group_signature(compiled[1])
    with pytest.raises(AlgorithmError, match="structurally different"):
        solve_group(compiled, library)


def test_factory_lane_mismatch_rejected():
    library = paper_library(2)
    variants = [v for _, v in corner_variants(random_small_tree(3), 3)]
    compiled = [compile_net(v, library) for v in variants]
    with pytest.raises(AlgorithmError, match="lanes"):
        solve_group(compiled, library, factory=BatchedSoAFactory(2))


def test_empty_group():
    assert solve_group([], paper_library(2)) == []


def test_warm_factory_reuse_is_still_exact():
    """A second solve on a recycled factory must not see stale state."""
    library = paper_library(3)
    factory = BatchedSoAFactory(4)
    for seed in (5, 6):
        tree = medium_net(seed, sinks=6, positions=70)
        compiled = [compile_net(v, library)
                    for _, v in corner_variants(tree, 4)]
        results = solve_group(compiled, library, factory=factory)
        for net, result in zip(compiled, results):
            reference = insert_buffers(net, library, backend="soa")
            assert result.slack == reference.slack
            assert result.assignment == reference.assignment
    stats = factory.stats()
    assert stats["solves"] == 2
    assert stats["lanes"] == 4


# -- SolverPool integration -------------------------------------------


class TestPoolGrouping:
    def test_pool_groups_corner_replicas(self):
        library = paper_library(3)
        tree = medium_net(83, sinks=6, positions=70)
        nets = [v for _, v in corner_variants(tree, 5)]
        loner = random_small_tree(9)
        with SolverPool(library) as pool:
            results = pool.solve(nets + [loner])
            stats = pool.batch_axis_stats()
        assert stats["enabled"] is True
        assert stats["groups"] == 1
        assert stats["batched_solves"] == 5
        assert stats["scalar_solves"] == 1
        assert stats["lanes_histogram"] == {5: 1}
        for tree_in, result in zip(nets + [loner], results):
            reference = insert_buffers(tree_in, library, backend="soa")
            assert result.slack == reference.slack
            assert result.assignment == reference.assignment

    def test_pool_all_singletons_never_errors(self):
        """Structurally distinct nets degrade to the per-net path."""
        library = paper_library(2)
        nets = [random_small_tree(s) for s in range(5)]
        with SolverPool(library) as pool:
            results = pool.solve(nets)
            stats = pool.batch_axis_stats()
        assert stats["groups"] == 0
        assert stats["scalar_solves"] == 5
        expected = [insert_buffers(t, library).slack for t in nets]
        assert [r.slack for r in results] == expected

    def test_pool_object_backend_disables_batch_axis(self):
        library = paper_library(2)
        nets = [v for _, v in corner_variants(random_small_tree(2), 3)]
        with SolverPool(library, backend="object") as pool:
            results = pool.solve(nets)
            stats = pool.batch_axis_stats()
        assert stats["enabled"] is False
        assert stats["batched_solves"] == 0
        expected = [insert_buffers(t, library, backend="object").slack
                    for t in nets]
        assert [r.slack for r in results] == expected

    def test_pool_unsupported_algorithm_falls_back(self):
        """van Ginneken + multi-type library cannot solve at all, but
        the pool must construct with batch axis off, not raise."""
        with SolverPool(paper_library(4), algorithm="van_ginneken") as pool:
            assert pool.batch_axis_stats()["enabled"] is False

    def test_pool_jobs2_grouping_matches_serial(self):
        library = paper_library(3)
        tree = medium_net(97, sinks=5, positions=50)
        nets = [v for _, v in corner_variants(tree, 6)]
        serial = solve_many(nets, library, jobs=1)
        parallel = solve_many(nets, library, jobs=2)
        assert [r.slack for r in serial] == [r.slack for r in parallel]
        assert ([r.assignment for r in serial]
                == [r.assignment for r in parallel])

    def test_solve_many_corner_group_matches_insert_buffers(self):
        library = paper_library(3)
        tree = medium_net(101, sinks=7, positions=80)
        nets = [v for _, v in corner_variants(tree, 8)]
        batch = solve_many(nets, library, jobs=1)
        for net, result in zip(nets, batch):
            reference = insert_buffers(net, library)
            assert result.slack == reference.slack
            assert result.assignment == reference.assignment
