"""Candidate-list statistics tests."""

import pytest

from repro import Driver, paper_library, two_pin_net
from repro.experiments import collect_list_stats, list_growth_by_positions
from repro.units import fF, ps


def line(segments):
    return two_pin_net(length=20_000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(3000.0), driver=Driver(200.0),
                       num_segments=segments)


def test_basic_stats_shape():
    stats = collect_list_stats(line(200), paper_library(8))
    assert stats.samples == 199
    assert 1 <= stats.median <= stats.p90 <= stats.maximum
    assert stats.mean <= stats.maximum
    assert stats.maximum <= stats.theoretical_bound


def test_hull_never_longer_than_list():
    stats = collect_list_stats(line(200), paper_library(8))
    assert stats.hull_mean <= stats.mean


def test_lists_grow_with_n():
    """The shape argument in EXPERIMENTS.md: mean k rises with n, which
    is what widens the Lillis-vs-fast gap at paper scale."""
    library = paper_library(16)
    growth = list_growth_by_positions(
        lambda n: line(n), (100, 400, 1600), library
    )
    means = [stats.mean for _, stats in growth]
    assert means == sorted(means)
    assert means[-1] > 2.0 * means[0]


def test_no_positions_instance():
    net = two_pin_net(length=100.0, num_segments=1)
    stats = collect_list_stats(net, paper_library(2))
    assert stats.samples == 0
    assert stats.maximum == 0


def test_str_mentions_key_numbers():
    text = str(collect_list_stats(line(100), paper_library(4)))
    assert "mean" in text and "max" in text and "bound" in text
