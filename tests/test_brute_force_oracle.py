"""Tiny-instance ground truth: DP algorithms versus exhaustive search."""

import pytest

from helpers import random_small_tree

from repro import (
    Driver,
    insert_buffers,
    insert_buffers_brute_force,
    paper_library,
    two_pin_net,
    uniform_random_library,
)
from repro.errors import AlgorithmError
from repro.units import fF, ps


def test_budget_guard():
    net = two_pin_net(length=1000.0, num_segments=30)
    with pytest.raises(AlgorithmError):
        insert_buffers_brute_force(net, paper_library(8), max_combinations=100)


def test_line_matches_brute_force():
    net = two_pin_net(length=3000.0, sink_capacitance=fF(20.0),
                      required_arrival=ps(900.0), driver=Driver(180.0),
                      num_segments=6)
    library = paper_library(3)
    exact = insert_buffers_brute_force(net, library)
    for algorithm in ("fast", "lillis"):
        dp = insert_buffers(net, library, algorithm=algorithm)
        assert dp.slack == pytest.approx(exact.slack, rel=1e-12), algorithm


@pytest.mark.parametrize("seed", range(20))
def test_random_trees_match_brute_force(seed):
    tree = random_small_tree(seed)
    if tree.num_buffer_positions > 7:
        pytest.skip("combinatorial blow-up")
    library = uniform_random_library(3, seed=seed + 7)
    exact = insert_buffers_brute_force(tree, library)
    dp = insert_buffers(tree, library)
    assert dp.slack == pytest.approx(exact.slack, rel=1e-12)


def test_brute_force_respects_allowed_buffers():
    from repro import RoutingTree

    library = paper_library(3)
    tree = RoutingTree.with_source(driver=Driver(300.0))
    v = tree.add_internal(0, 200.0, fF(30.0),
                          allowed_buffers=[library[0].name])
    tree.add_sink(v, 200.0, fF(30.0), capacitance=fF(20.0),
                  required_arrival=ps(500.0))
    exact = insert_buffers_brute_force(tree, library)
    for buffer in exact.assignment.values():
        assert buffer.name == library[0].name
    dp = insert_buffers(tree, library)
    assert dp.slack == pytest.approx(exact.slack, rel=1e-12)


def test_brute_force_stats_report_enumeration():
    net = two_pin_net(length=2000.0, num_segments=3,
                      required_arrival=ps(500.0), driver=Driver(200.0))
    library = paper_library(2)
    exact = insert_buffers_brute_force(net, library)
    # 2 positions, 3 choices each = 9 assignments.
    assert exact.stats.candidates_generated == 9
    assert exact.stats.algorithm == "brute_force"
