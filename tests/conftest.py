"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import pytest

from repro import (
    BufferLibrary,
    BufferType,
    Driver,
    RoutingTree,
    paper_library,
    two_pin_net,
)
from repro.core.candidate import Candidate, SinkDecision
from repro.units import fF, ps

#: Tolerance for slack comparisons in seconds (sub-femtosecond).
SLACK_ATOL = 1e-16


def make_candidates(points: Sequence[Tuple[float, float]]) -> List[Candidate]:
    """Candidates from raw (q, c) pairs with dummy sink decisions."""
    return [Candidate(q=q, c=c, decision=SinkDecision(i)) for i, (q, c) in enumerate(points)]


def qc(candidates: Sequence[Candidate]) -> List[Tuple[float, float]]:
    """The (q, c) pairs of a candidate list, for equality assertions."""
    return [(cand.q, cand.c) for cand in candidates]


def random_small_tree(seed: int, max_extra: int = 3) -> RoutingTree:
    """A random tree with <= ~7 buffer positions, for oracle tests.

    The shape mixes chains and branches so merges happen above buffer
    positions (the structurally interesting case).
    """
    rng = random.Random(seed)
    tree = RoutingTree.with_source(driver=Driver(rng.uniform(100.0, 800.0)))

    def wire() -> Tuple[float, float]:
        return rng.uniform(5.0, 400.0), fF(rng.uniform(2.0, 60.0))

    def sink(parent: int) -> None:
        r, c = wire()
        tree.add_sink(
            parent,
            r,
            c,
            capacitance=fF(rng.uniform(2.0, 41.0)),
            required_arrival=ps(rng.uniform(0.0, 1500.0)),
        )

    # A short chain off the source, then a branch, then short chains.
    r, c = wire()
    node = tree.add_internal(tree.root_id, r, c)
    for _ in range(rng.randrange(max_extra)):
        r, c = wire()
        node = tree.add_internal(node, r, c)
    branches = rng.choice([1, 2, 2, 3])
    for _ in range(branches):
        child = node
        for _ in range(rng.randrange(1, 3)):
            r, c = wire()
            child = tree.add_internal(child, r, c)
        sink(child)
    tree.validate()
    return tree


@pytest.fixture
def small_library() -> BufferLibrary:
    """A 3-type library with spread parameters."""
    return BufferLibrary(
        [
            BufferType("weak", 4000.0, fF(1.5), ps(30.0)),
            BufferType("mid", 1200.0, fF(6.0), ps(32.0)),
            BufferType("strong", 300.0, fF(18.0), ps(35.0)),
        ]
    )


@pytest.fixture
def single_buffer() -> BufferType:
    return BufferType("only", 1000.0, fF(5.0), ps(30.0))


@pytest.fixture
def line_net() -> RoutingTree:
    """An 8-segment 2-pin line with a driver."""
    return two_pin_net(
        length=6000.0,
        sink_capacitance=fF(20.0),
        required_arrival=ps(900.0),
        driver=Driver(resistance=200.0),
        num_segments=8,
    )


@pytest.fixture
def paper_lib8() -> BufferLibrary:
    return paper_library(8)
