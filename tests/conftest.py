"""Shared fixtures for the test suite.

Non-fixture helpers (``SLACK_ATOL``, ``make_candidates``, ``qc``,
``random_small_tree``) live in :mod:`helpers`; they are re-exported here
for backward compatibility with ``from conftest import ...``.
"""

from __future__ import annotations

import pytest

from helpers import (  # noqa: F401  (re-exported for legacy imports)
    SLACK_ATOL,
    make_candidates,
    qc,
    random_small_tree,
)

from repro import BufferLibrary, BufferType, RoutingTree, paper_library, two_pin_net
from repro.tree.node import Driver
from repro.units import fF, ps


@pytest.fixture
def small_library() -> BufferLibrary:
    """A 3-type library with spread parameters."""
    return BufferLibrary(
        [
            BufferType("weak", 4000.0, fF(1.5), ps(30.0)),
            BufferType("mid", 1200.0, fF(6.0), ps(32.0)),
            BufferType("strong", 300.0, fF(18.0), ps(35.0)),
        ]
    )


@pytest.fixture
def single_buffer() -> BufferType:
    return BufferType("only", 1000.0, fF(5.0), ps(30.0))


@pytest.fixture
def line_net() -> RoutingTree:
    """An 8-segment 2-pin line with a driver."""
    return two_pin_net(
        length=6000.0,
        sink_capacitance=fF(20.0),
        required_arrival=ps(900.0),
        driver=Driver(resistance=200.0),
        num_segments=8,
    )


@pytest.fixture
def paper_lib8() -> BufferLibrary:
    return paper_library(8)
