"""H-tree and Prim-Steiner builder tests."""

import pytest

from repro import (
    Driver,
    elmore_delays,
    h_tree_net,
    insert_buffers,
    paper_library,
    prim_steiner_net,
)
from repro.errors import TreeError
from repro.units import fF, ps


class TestHTree:
    @pytest.mark.parametrize("levels,expected", [(1, 4), (2, 16), (3, 64)])
    def test_sink_count(self, levels, expected):
        assert h_tree_net(levels).num_sinks == expected

    def test_validation(self):
        with pytest.raises(TreeError):
            h_tree_net(0)
        with pytest.raises(TreeError):
            h_tree_net(2, span=-1.0)

    def test_perfect_symmetry_unbuffered(self):
        net = h_tree_net(2, driver=Driver(200.0))
        delays = list(elmore_delays(net).values())
        assert all(d == pytest.approx(delays[0], rel=1e-9) for d in delays)

    def test_symmetry_survives_buffering(self):
        """Optimal buffering of a symmetric net keeps sinks symmetric
        (equal worst slack across all four quadrants)."""
        net = h_tree_net(2, span=6000.0, sink_capacitance=fF(12.0),
                         required_arrival=ps(1000.0), driver=Driver(250.0))
        result = insert_buffers(net, paper_library(4))
        report = result.verify(net)
        slacks = list(report.sink_slacks.values())
        assert min(slacks) == pytest.approx(report.slack)
        # The critical slack is shared by many sinks in a symmetric net.
        critical = sum(
            1 for s in slacks if s == pytest.approx(report.slack, rel=1e-9)
        )
        assert critical >= 4

    def test_buffering_improves_deep_htree(self):
        from repro import unbuffered_slack

        net = h_tree_net(3, span=12_000.0, required_arrival=ps(2000.0),
                         driver=Driver(250.0))
        result = insert_buffers(net, paper_library(4))
        assert result.slack > unbuffered_slack(net) + ps(10.0)

    def test_all_internal_are_buffer_positions(self):
        net = h_tree_net(2)
        from repro.tree.node import NodeKind

        internals = [n for n in net.nodes() if n.kind is NodeKind.INTERNAL]
        assert internals
        assert all(n.is_buffer_position for n in internals)


class TestPrimSteiner:
    def test_reproducible(self):
        a = prim_steiner_net(30, seed=1)
        b = prim_steiner_net(30, seed=1)
        assert a.num_nodes == b.num_nodes
        assert [n.capacitance for n in a.sinks()] == [
            n.capacitance for n in b.sinks()
        ]

    def test_sink_count(self):
        assert prim_steiner_net(25, seed=2).num_sinks == 25

    def test_single_sink(self):
        net = prim_steiner_net(1, seed=3)
        net.validate()
        assert net.num_sinks == 1

    def test_rejects_zero_sinks(self):
        with pytest.raises(TreeError):
            prim_steiner_net(0, seed=0)

    def test_has_bend_buffer_positions(self):
        net = prim_steiner_net(40, seed=4)
        assert net.num_buffer_positions > 0

    def test_wirelength_reasonable(self):
        """Prim attachment should not exceed per-pin star wirelength."""
        net = prim_steiner_net(40, seed=5, die_size=1000.0)
        star_bound = 40 * 2000.0  # every pin routed from the source corner
        assert 0 < net.total_wire_length() < star_bound

    def test_algorithms_agree_on_steiner_topology(self):
        from helpers import SLACK_ATOL

        net = prim_steiner_net(25, seed=6, required_arrival=ps(1500.0),
                               driver=Driver(200.0))
        library = paper_library(4)
        fast = insert_buffers(net, library)
        lillis = insert_buffers(net, library, algorithm="lillis")
        assert fast.slack == pytest.approx(lillis.slack, abs=SLACK_ATOL)
        assert fast.verify(net).slack == pytest.approx(fast.slack, rel=1e-12)
