"""BufferLibrary container tests."""

import pytest

from repro import BufferLibrary, BufferType
from repro.errors import LibraryError
from repro.units import fF, ps


def bt(name, r, c, k=ps(30.0)):
    return BufferType(name, r, c, k)


@pytest.fixture
def library():
    return BufferLibrary(
        [
            bt("a", 1000.0, fF(5.0)),
            bt("b", 4000.0, fF(1.0)),
            bt("c", 250.0, fF(20.0)),
        ]
    )


def test_size_and_len(library):
    assert library.size == 3
    assert len(library) == 3


def test_empty_library_rejected():
    with pytest.raises(LibraryError):
        BufferLibrary([])


def test_duplicate_names_rejected():
    with pytest.raises(LibraryError) as excinfo:
        BufferLibrary([bt("x", 1.0, 0.0), bt("x", 2.0, 0.0)])
    assert "x" in str(excinfo.value)


def test_by_resistance_desc_order(library):
    rs = [b.driving_resistance for b in library.by_resistance_desc]
    assert rs == sorted(rs, reverse=True)


def test_by_capacitance_asc_order(library):
    cs = [b.input_capacitance for b in library.by_capacitance_asc]
    assert cs == sorted(cs)


def test_resistance_ties_break_by_capacitance():
    lib = BufferLibrary([bt("hi_c", 1000.0, fF(9.0)), bt("lo_c", 1000.0, fF(2.0))])
    assert [b.name for b in lib.by_resistance_desc] == ["lo_c", "hi_c"]


def test_get_by_name(library):
    assert library.get("b").driving_resistance == 4000.0


def test_get_unknown_raises(library):
    with pytest.raises(LibraryError):
        library.get("zzz")


def test_subset(library):
    sub = library.subset(["c", "a"])
    assert sub.size == 2
    assert {b.name for b in sub} == {"a", "c"}


def test_iteration_preserves_construction_order(library):
    assert [b.name for b in library] == ["a", "b", "c"]


def test_indexing(library):
    assert library[1].name == "b"


def test_contains(library):
    assert library.get("a") in library


def test_equality_and_hash(library):
    clone = BufferLibrary(library.buffers)
    assert clone == library
    assert hash(clone) == hash(library)
    assert BufferLibrary([bt("a", 1000.0, fF(5.0))]) != library


def test_without_dominated_drops_strictly_worse():
    lib = BufferLibrary(
        [
            bt("good", 500.0, fF(2.0), ps(25.0)),
            bt("bad", 600.0, fF(3.0), ps(30.0)),  # worse on all axes
            bt("tradeoff", 300.0, fF(10.0), ps(25.0)),
        ]
    )
    kept = lib.without_dominated()
    assert {b.name for b in kept} == {"good", "tradeoff"}


def test_without_dominated_keeps_one_of_exact_ties():
    lib = BufferLibrary([bt("first", 500.0, fF(2.0)), bt("second", 500.0, fF(2.0))])
    kept = lib.without_dominated()
    assert [b.name for b in kept] == ["first"]


def test_ranges(library):
    assert library.resistance_range() == (250.0, 4000.0)
    lo, hi = library.capacitance_range()
    assert lo == fF(1.0) and hi == fF(20.0)


def test_repr_round_trippable_shape(library):
    assert "BufferLibrary" in repr(library)
