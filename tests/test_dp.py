"""Dynamic-program engine tests (shared machinery)."""

import pytest

from repro import (
    BufferLibrary,
    BufferType,
    Driver,
    RoutingTree,
    insert_buffers,
    two_pin_net,
)
from repro.core.dp import build_plans
from repro.errors import AlgorithmError
from repro.units import fF, ps


def test_invalid_tree_rejected(paper_lib8):
    tree = RoutingTree.with_source()  # no sinks
    with pytest.raises(AlgorithmError):
        insert_buffers(tree, paper_lib8)


def test_single_sink_no_positions(paper_lib8):
    tree = RoutingTree.with_source(driver=Driver(100.0))
    tree.add_sink(0, 10.0, fF(2.0), capacitance=fF(3.0), required_arrival=ps(100.0))
    result = insert_buffers(tree, paper_lib8)
    assert result.num_buffers == 0
    assert result.slack == pytest.approx(result.verify(tree).slack)


def test_no_driver_means_best_q(small_library):
    tree = two_pin_net(length=1000.0, num_segments=4, required_arrival=ps(100.0))
    assert tree.driver is None
    result = insert_buffers(tree, small_library)
    report = result.verify(tree)
    assert result.slack == pytest.approx(report.slack)


def test_stats_populated(line_net, small_library):
    result = insert_buffers(line_net, small_library)
    stats = result.stats
    assert stats.algorithm == "fast"
    assert stats.num_buffer_positions == line_net.num_buffer_positions
    assert stats.library_size == 3
    assert stats.root_candidates >= 1
    assert stats.peak_list_length >= stats.root_candidates
    assert stats.candidates_generated > 0
    assert stats.runtime_seconds >= 0.0


def test_driver_override_changes_slack(line_net, small_library):
    weak = insert_buffers(line_net, small_library, driver=Driver(5000.0))
    strong = insert_buffers(line_net, small_library, driver=Driver(10.0))
    assert strong.slack > weak.slack


def test_build_plans_shares_full_library_orders(paper_lib8):
    tree = two_pin_net(length=1000.0, num_segments=4)
    plans = build_plans(tree, paper_lib8)
    ids = {id(plan.by_resistance_desc) for plan in plans.values()}
    assert len(ids) == 1  # shared tuples, per-node ids


def test_build_plans_respects_restrictions(paper_lib8):
    tree = RoutingTree.with_source()
    only_first = paper_lib8[0].name
    v1 = tree.add_internal(0, 1.0, fF(1.0), allowed_buffers=[only_first])
    v2 = tree.add_internal(v1, 1.0, fF(1.0), allowed_buffers=[])
    tree.add_sink(v2, 1.0, fF(1.0), capacitance=fF(2.0), required_arrival=0.0)
    plans = build_plans(tree, paper_lib8)
    assert len(plans[v1]) == 1
    assert v2 not in plans  # empty allowed set: not a usable position


def test_allowed_buffers_respected_in_solution(small_library):
    tree = RoutingTree.with_source(driver=Driver(500.0))
    v = tree.add_internal(0, 300.0, fF(40.0), allowed_buffers=["weak"])
    tree.add_sink(v, 300.0, fF(40.0), capacitance=fF(30.0),
                  required_arrival=ps(500.0))
    result = insert_buffers(tree, small_library)
    for buffer in result.assignment.values():
        assert buffer.name == "weak"


def test_multi_branch_merge_three_children(small_library):
    tree = RoutingTree.with_source(driver=Driver(300.0))
    hub = tree.add_internal(0, 50.0, fF(10.0))
    for i in range(3):
        leg = tree.add_internal(hub, 30.0, fF(5.0))
        tree.add_sink(leg, 20.0, fF(3.0), capacitance=fF(10.0),
                      required_arrival=ps(200.0 + 100.0 * i))
    result = insert_buffers(tree, small_library)
    assert result.slack == pytest.approx(result.verify(tree).slack)


def test_deep_chain_no_recursion_error(small_library):
    tree = two_pin_net(length=50_000.0, num_segments=3000,
                       required_arrival=ps(5000.0), driver=Driver(200.0))
    result = insert_buffers(tree, small_library)
    assert result.num_buffers > 0


def test_candidate_counts_bounded_by_theory(line_net, paper_lib8):
    """Section 2: at most b*n + 1 nonredundant candidates anywhere."""
    result = insert_buffers(line_net, paper_lib8)
    bound = paper_lib8.size * line_net.num_buffer_positions + 1
    assert result.stats.peak_list_length <= bound
