"""Resilient-execution tests: deadlines, supervision, breakers, faults.

The contract under test is the one ``docs/resilience.md`` states: under
any committed fault plan a solve either returns the **bit-identical**
result of the healthy path (degraded execution is legal, different
answers are not) or raises a *typed* error — and it never hangs and
never returns silently corrupted data.  Fault injection is deterministic
(:mod:`repro.resilience.faults`), so every chaos scenario here replays
exactly.
"""

import time

import pytest

from repro import Driver, compile_net, insert_buffers, paper_library, random_tree_net
from repro.core.batch import SolverPool, solve_many
from repro.errors import (
    DeadlineExceeded,
    FaultInjectedError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.parallel import plan_partitions, solve_partitioned
from repro.resilience import (
    FAULT_SITES,
    BackoffPolicy,
    BreakerBoard,
    CircuitBreaker,
    Deadline,
    FaultPlan,
    FaultRule,
    Supervisor,
    active_deadline,
    clear_fault_plan,
    deadline_scope,
    install_fault_plan,
    is_supervisable,
)
from repro.tree.segmenting import segment_to_position_count
from repro.units import ps


def assert_identical(result, reference):
    """Bit-identical: slack, assignment, load and DP accounting."""
    assert result.slack == reference.slack
    assert result.assignment == reference.assignment
    assert result.driver_load == reference.driver_load
    assert result.stats.root_candidates == reference.stats.root_candidates
    assert result.stats.peak_list_length == reference.stats.peak_list_length
    assert (result.stats.candidates_generated
            == reference.stats.candidates_generated)


def small_net(seed=11, sinks=8):
    return random_tree_net(
        sinks, seed=seed, required_arrival=(ps(500.0), ps(2000.0)),
        driver=Driver(resistance=200.0),
    )


def partitionable_net(seed=5, sinks=24, positions=800):
    base = random_tree_net(
        sinks, seed=seed, required_arrival=(ps(400.0), ps(2500.0)),
        driver=Driver(resistance=200.0),
    )
    return segment_to_position_count(base, positions)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


@pytest.fixture(autouse=True)
def no_leaked_faults():
    """No fault plan survives a test (nor the REPRO_FAULTS export)."""
    clear_fault_plan()
    yield
    clear_fault_plan()


@pytest.fixture(scope="module")
def library():
    return paper_library(4)


# -- deadlines --------------------------------------------------------


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="> 0"):
            Deadline(0.0)
        with pytest.raises(ValueError, match="> 0"):
            Deadline(-1.0)

    def test_remaining_and_expired(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        clock.now = 1.5
        assert deadline.remaining() == pytest.approx(0.5)
        clock.now = 2.0
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(0.0)
        clock.now = 3.0
        assert deadline.remaining() == pytest.approx(-1.0)

    def test_check_raises_typed_error_with_site(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        deadline.check("dp.schedule")  # within budget: no raise
        clock.now = 1.0
        with pytest.raises(DeadlineExceeded, match="dp.schedule") as info:
            deadline.check("dp.schedule")
        assert info.value.site == "dp.schedule"
        assert info.value.budget == pytest.approx(0.5)

    def test_from_ms(self):
        clock = FakeClock()
        deadline = Deadline.from_ms(250.0, clock=clock)
        assert deadline.budget == pytest.approx(0.25)

    def test_scope_installs_and_restores(self):
        assert active_deadline() is None
        outer = Deadline(10.0)
        with deadline_scope(outer):
            assert active_deadline() is outer
            inner = Deadline(1.0)
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_scope_none_keeps_existing(self):
        outer = Deadline(10.0)
        with deadline_scope(outer):
            with deadline_scope(None):
                # An unbounded call nested in a bounded one stays bounded.
                assert active_deadline() is outer
            assert active_deadline() is outer


class TestDeadlineInStrategies:
    """Every execution strategy honors an (already expired) deadline."""

    def expired(self):
        clock = FakeClock()
        deadline = Deadline(0.001, clock=clock)
        clock.now = 1.0
        return deadline

    @pytest.mark.parametrize("backend", ["object", "soa"])
    def test_insert_buffers(self, backend, library):
        if backend == "soa":
            pytest.importorskip("numpy")
        with pytest.raises(DeadlineExceeded):
            insert_buffers(
                small_net(), library, backend=backend,
                deadline=self.expired(),
            )

    def test_solve_partitioned_inline(self, library):
        compiled = compile_net(partitionable_net(), library)
        plan = plan_partitions(compiled, 4, min_instructions=16)
        assert plan.viable, plan.reason
        with pytest.raises(DeadlineExceeded):
            solve_partitioned(
                compiled, library, jobs=1, plan=plan,
                deadline=self.expired(),
            )

    def test_batch_axis_group(self, library):
        pytest.importorskip("numpy")
        from repro.experiments.workloads import corner_variants

        trees = [tree for _, tree in corner_variants(small_net(), 3)]
        with pytest.raises(DeadlineExceeded):
            solve_many(trees, library, backend="soa",
                       deadline=self.expired())

    def test_incremental_resolve(self, library):
        from repro.incremental import IncrementalSolver

        solver = IncrementalSolver(small_net(), library)
        with deadline_scope(self.expired()):
            with pytest.raises(DeadlineExceeded):
                solver.resolve()

    def test_pool_dispatch_bounded_without_task_timeout(self, library):
        """A hung worker cannot outlive the deadline even with no
        task_timeout configured: the parent's wait is clipped."""
        install_fault_plan(FaultPlan(
            [FaultRule("worker.task", "hang", seconds=30.0)], seed=1,
        ), export_env=True)
        nets = [small_net(seed) for seed in (1, 2, 3)]
        started = time.monotonic()
        with SolverPool(library, jobs=2, max_retries=0) as pool:
            with pytest.raises(DeadlineExceeded):
                pool.solve(nets, deadline=Deadline(1.0))
        assert time.monotonic() - started < 15.0

    def test_generous_deadline_is_bit_identical(self, library):
        net = small_net()
        reference = insert_buffers(net, library)
        bounded = insert_buffers(net, library, deadline=Deadline(300.0))
        assert_identical(bounded, reference)


# -- backoff and supervisor -------------------------------------------


class TestBackoffPolicy:
    def test_deterministic_for_a_seed(self):
        a = BackoffPolicy(seed=7)
        b = BackoffPolicy(seed=7)
        assert [a.delay(i) for i in range(6)] == [b.delay(i) for i in range(6)]

    def test_cap_and_growth(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=0.5, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_bounds(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, cap=1.0, jitter=0.25)
        for attempt in range(50):
            assert 0.75 <= policy.delay(attempt) <= 1.25


class TestSupervisor:
    def test_success_needs_no_supervision(self):
        supervisor = Supervisor(max_retries=2, sleep=lambda _: None)
        assert supervisor.run(lambda: 42) == 42
        assert supervisor.stats() == {
            "retries": 0, "respawns": 0, "fallbacks": 0,
            "supervised_failures": 0,
        }

    def test_retry_then_success(self):
        supervisor = Supervisor(max_retries=2, sleep=lambda _: None)
        attempts = []

        def attempt():
            attempts.append(1)
            if len(attempts) == 1:
                raise FaultInjectedError("test.site")
            return "ok"

        respawns = []
        assert supervisor.run(attempt, respawn=lambda: respawns.append(1)) == "ok"
        assert len(attempts) == 2
        assert len(respawns) == 1
        stats = supervisor.stats()
        assert stats["retries"] == 1
        assert stats["respawns"] == 1
        assert stats["fallbacks"] == 0

    def test_non_supervisable_raises_immediately(self):
        supervisor = Supervisor(max_retries=5, sleep=lambda _: None)
        attempts = []

        def attempt():
            attempts.append(1)
            raise ValueError("algorithm bug")

        with pytest.raises(ValueError):
            supervisor.run(attempt, fallback=lambda: "never")
        assert len(attempts) == 1

    def test_deadline_exceeded_is_not_supervisable(self):
        assert not is_supervisable(DeadlineExceeded("dp.walk", 1.0))
        assert is_supervisable(FaultInjectedError("x"))
        assert is_supervisable(WorkerCrashError("dead"))
        assert is_supervisable(WorkerHangError("stuck"))
        supervisor = Supervisor(max_retries=5, sleep=lambda _: None)
        attempts = []

        def attempt():
            attempts.append(1)
            raise DeadlineExceeded("dp.walk", 1.0)

        with pytest.raises(DeadlineExceeded):
            supervisor.run(attempt, fallback=lambda: "never")
        assert len(attempts) == 1

    def test_fallback_after_exhaustion(self):
        supervisor = Supervisor(max_retries=1, sleep=lambda _: None)

        def attempt():
            raise FaultInjectedError("test.site")

        assert supervisor.run(attempt, fallback=lambda: "degraded") == "degraded"
        stats = supervisor.stats()
        assert stats["fallbacks"] == 1
        assert stats["supervised_failures"] == 2  # initial + 1 retry

    def test_exhaustion_without_fallback_reraises(self):
        supervisor = Supervisor(max_retries=1, sleep=lambda _: None)
        with pytest.raises(FaultInjectedError):
            supervisor.run(lambda: (_ for _ in ()).throw(
                FaultInjectedError("test.site")))

    def test_on_failure_observes_every_failure(self):
        supervisor = Supervisor(max_retries=2, sleep=lambda _: None)
        seen = []
        supervisor.run(
            lambda: (_ for _ in ()).throw(FaultInjectedError("s")),
            fallback=lambda: None, on_failure=seen.append,
        )
        assert len(seen) == 3
        assert all(isinstance(exc, FaultInjectedError) for exc in seen)


# -- circuit breakers -------------------------------------------------


class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset=30.0):
        return CircuitBreaker(
            "parallel", failure_threshold=threshold,
            reset_seconds=reset, clock=clock,
        )

    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_count(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 31.0
        assert breaker.state == "half_open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else waits on it
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 31.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        clock.now = 40.0
        assert not breaker.allow()  # cool-down restarted at 31
        clock.now = 62.0
        assert breaker.allow()

    def test_cancel_probe_returns_the_token(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 31.0
        assert breaker.allow()
        # The caller consulted allow() at routing time but the router
        # declined the strategy: without cancel the breaker would stay
        # wedged half-open with its only token lost.
        breaker.cancel_probe()
        assert breaker.allow()

    def test_stats_shape(self):
        breaker = self.make(FakeClock())
        stats = breaker.stats()
        assert set(stats) == {
            "state", "trips", "failures", "successes",
            "consecutive_failures",
        }

    def test_board(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, clock=clock)
        assert board.allow("parallel")
        board.record("parallel", False)
        assert not board.allow("parallel")
        assert board.allow("batch_axis")
        assert board.trips() == 1
        stats = board.stats()
        assert stats["parallel"]["state"] == "open"
        assert stats["batch_axis"]["state"] == "closed"
        # Unknown axes are permissive no-ops, never KeyErrors.
        assert board.allow("nonexistent")
        board.record("nonexistent", False)
        board.cancel("nonexistent")


# -- fault plans ------------------------------------------------------


class TestFaultPlan:
    def test_site_registry_documents_every_site(self):
        names = [name for name, _ in FAULT_SITES]
        assert names == [
            "worker.task", "worker.partition", "batch.dispatch",
            "parallel.dispatch", "batch.group", "cache.payload",
        ]
        assert all(description for _, description in FAULT_SITES)

    def test_invalid_rules_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule("worker.task", "explode")
        with pytest.raises(ValueError, match="rate"):
            FaultRule("worker.task", "crash", rate=0.0)
        with pytest.raises(ValueError, match="rate"):
            FaultRule("worker.task", "crash", rate=1.5)

    def test_draws_are_deterministic_per_seed(self):
        def sequence(seed):
            plan = FaultPlan(
                [FaultRule("worker.task", "error", rate=0.5)], seed=seed)
            return [
                plan.draw("worker.task", ("error",)) is not None
                for _ in range(40)
            ]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)
        fired = sum(sequence(7))
        assert 0 < fired < 40  # rate 0.5 actually mixes

    def test_site_streams_are_independent(self):
        plan_a = FaultPlan([
            FaultRule("worker.task", "error", rate=0.5),
            FaultRule("batch.group", "error", rate=0.5),
        ], seed=3)
        plan_b = FaultPlan([
            FaultRule("worker.task", "error", rate=0.5),
        ], seed=3)
        # Drawing at batch.group must not perturb worker.task's stream.
        draws_a = []
        for _ in range(20):
            plan_a.draw("batch.group", ("error",))
            draws_a.append(plan_a.draw("worker.task", ("error",)) is not None)
        draws_b = [
            plan_b.draw("worker.task", ("error",)) is not None
            for _ in range(20)
        ]
        assert draws_a == draws_b

    def test_limit_bounds_fires(self):
        plan = FaultPlan(
            [FaultRule("worker.task", "error", rate=1.0, limit=2)], seed=1)
        fires = [
            plan.draw("worker.task", ("error",)) is not None
            for _ in range(5)
        ]
        assert fires == [True, True, False, False, False]
        assert plan.fired["worker.task:error"] == 2

    def test_json_round_trip(self):
        plan = FaultPlan([
            FaultRule("worker.task", "crash", rate=0.1),
            FaultRule("worker.task", "hang", rate=0.05, seconds=2.0),
            FaultRule("cache.payload", "corrupt", rate=1.0, limit=3),
        ], seed=99)
        import json

        clone = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert clone.to_dict() == plan.to_dict()

    def test_env_export_round_trip(self):
        import os

        from repro.resilience.faults import ENV_VAR

        plan = FaultPlan(
            [FaultRule("worker.task", "error", rate=0.25)], seed=42)
        install_fault_plan(plan, export_env=True)
        exported = os.environ[ENV_VAR]
        assert FaultPlan.from_json(exported).to_dict() == plan.to_dict()
        clear_fault_plan()
        assert ENV_VAR not in os.environ

    def test_inject_is_inert_without_a_plan(self):
        from repro.resilience import inject, should_corrupt

        inject("worker.task")  # no plan: must be a no-op
        assert not should_corrupt("cache.payload")

    def test_error_kind_raises_typed_error(self):
        from repro.resilience import inject

        install_fault_plan(FaultPlan(
            [FaultRule("batch.dispatch", "error", rate=1.0)], seed=1))
        with pytest.raises(FaultInjectedError, match="batch.dispatch"):
            inject("batch.dispatch")


# -- chaos: fault sites x strategies ----------------------------------


class TestFaultSitesAcrossStrategies:
    """Injected faults degrade bit-identically or fail typed — never
    hang, never corrupt."""

    def refs(self, nets, library):
        return [insert_buffers(net, library) for net in nets]

    def test_worker_task_error_degrades_bit_identically(self, library):
        install_fault_plan(FaultPlan(
            [FaultRule("worker.task", "error", rate=1.0)], seed=1,
        ), export_env=True)
        nets = [small_net(seed) for seed in (1, 2, 3)]
        with SolverPool(library, jobs=2, max_retries=1) as pool:
            results = pool.solve(nets)
            stats = pool.supervisor.stats()
        clear_fault_plan()
        for result, reference in zip(results, self.refs(nets, library)):
            assert_identical(result, reference)
        assert stats["fallbacks"] == 1
        assert stats["retries"] == 1

    def test_worker_task_crash_detected_and_degraded(self, library):
        """os._exit in a pool worker: multiprocessing.Pool does not
        raise — the per-task timeout must catch it."""
        install_fault_plan(FaultPlan(
            [FaultRule("worker.task", "crash", rate=1.0)], seed=1,
        ), export_env=True)
        nets = [small_net(seed) for seed in (1, 2, 3)]
        started = time.monotonic()
        with SolverPool(
            library, jobs=2, task_timeout=1.0, max_retries=1,
        ) as pool:
            results = pool.solve(nets)
            stats = pool.supervisor.stats()
        clear_fault_plan()
        assert time.monotonic() - started < 30.0
        for result, reference in zip(results, self.refs(nets, library)):
            assert_identical(result, reference)
        assert stats["fallbacks"] == 1
        assert stats["respawns"] == 1

    def test_worker_task_hang_detected_and_degraded(self, library):
        install_fault_plan(FaultPlan(
            [FaultRule("worker.task", "hang", seconds=20.0)], seed=1,
        ), export_env=True)
        nets = [small_net(seed) for seed in (1, 2, 3)]
        started = time.monotonic()
        with SolverPool(
            library, jobs=2, task_timeout=0.5, max_retries=0,
        ) as pool:
            results = pool.solve(nets)
            stats = pool.supervisor.stats()
        clear_fault_plan()
        assert time.monotonic() - started < 15.0
        for result, reference in zip(results, self.refs(nets, library)):
            assert_identical(result, reference)
        assert stats["fallbacks"] == 1

    def test_transient_retry_recovers_without_fallback(self, library):
        install_fault_plan(FaultPlan(
            [FaultRule("batch.dispatch", "error", rate=1.0, limit=1)],
            seed=1,
        ), export_env=True)
        nets = [small_net(seed) for seed in (1, 2, 3)]
        with SolverPool(library, jobs=2, max_retries=2) as pool:
            results = pool.solve(nets)
            stats = pool.supervisor.stats()
        clear_fault_plan()
        for result, reference in zip(results, self.refs(nets, library)):
            assert_identical(result, reference)
        assert stats["retries"] == 1
        assert stats["fallbacks"] == 0

    def test_batch_group_fault_degrades_bit_identically(self, library):
        pytest.importorskip("numpy")
        from repro.experiments.workloads import corner_variants

        install_fault_plan(FaultPlan(
            [FaultRule("batch.group", "error", rate=1.0, limit=1)], seed=1))
        trees = [tree for _, tree in corner_variants(small_net(), 3)]
        with SolverPool(library, jobs=1, backend="soa") as pool:
            results = pool.solve(trees)
            counters = pool.resilience_stats()
        references = [
            insert_buffers(tree, library, backend="soa") for tree in trees
        ]
        for result, reference in zip(results, references):
            assert_identical(result, reference)
        assert counters["batch_group_fallbacks"] >= 1
        assert counters["breakers"]["batch_axis"]["failures"] >= 1

    def test_partitioned_dispatch_fault_degrades_bit_identically(
        self, library
    ):
        install_fault_plan(FaultPlan(
            [FaultRule("parallel.dispatch", "error", rate=1.0)], seed=1,
        ), export_env=True)
        net = partitionable_net()
        with SolverPool(
            library, jobs=2, policy="always_parallel", task_timeout=5.0,
        ) as pool:
            result = pool.solve([net])[0]
            counters = pool.resilience_stats()
        clear_fault_plan()
        assert_identical(result, insert_buffers(net, library))
        assert counters["partitioned_fallbacks"] >= 1

    def test_worker_partition_crash_raises_typed_error(self, library):
        """Satellite regression: an os._exit worker during a transient
        partitioned dispatch surfaces as WorkerCrashError with the
        in-flight cut ids — not a hang, not a bare BrokenProcessPool."""
        install_fault_plan(FaultPlan(
            [FaultRule("worker.partition", "crash", rate=1.0)], seed=1,
        ), export_env=True)
        compiled = compile_net(partitionable_net(), library)
        plan = plan_partitions(compiled, 2, min_instructions=16)
        assert plan.viable, plan.reason
        started = time.monotonic()
        with pytest.raises(WorkerCrashError) as info:
            solve_partitioned(compiled, library, jobs=2, plan=plan)
        clear_fault_plan()
        assert time.monotonic() - started < 30.0
        assert info.value.cuts, "the error must carry the in-flight cuts"
        assert "worker pool broke" in str(info.value)

    def test_breaker_opens_and_reroutes_after_group_failures(self, library):
        pytest.importorskip("numpy")
        from repro.experiments.workloads import corner_variants

        install_fault_plan(FaultPlan(
            [FaultRule("batch.group", "error", rate=1.0)], seed=1))
        trees = [tree for _, tree in corner_variants(small_net(), 3)]
        references = [
            insert_buffers(tree, library, backend="soa") for tree in trees
        ]
        with SolverPool(
            library, jobs=1, backend="soa", breaker_threshold=1,
        ) as pool:
            first = pool.solve(trees)
            assert pool.breakers.breaker("batch_axis").state == "open"
            # Tripped axis: groups are no longer formed, the scalar
            # path answers — and the fault site is never reached.
            second = pool.solve(trees)
            fired_after_trip = pool.resilience_stats()
        for result, reference in zip(first + second, references * 2):
            assert_identical(result, reference)
        assert fired_after_trip["batch_group_fallbacks"] == 1


class TestDeadlineErrorMapping:
    def test_workers_do_not_inherit_ambient_deadline(self, library):
        """Regression: under the fork start method, a pool whose workers
        fork while the dispatching thread holds a deadline_scope copied
        the thread-local into the children — and once that budget
        expired, every later request (with no deadline of its own) died
        on the stale copy inside the workers."""
        import time as _time

        nets = [small_net(seed) for seed in (1, 2)]
        references = [insert_buffers(net, library) for net in nets]
        with SolverPool(library, jobs=2) as pool:
            with deadline_scope(Deadline(1.0)):
                pool.solve(nets)  # workers fork inside the live scope
            _time.sleep(1.1)  # any leaked copy is now expired
            # No deadline anywhere in the parent: if the workers kept
            # the forked copy, this solve dies at dp.schedule.
            results = pool.solve(nets)
        for result, reference in zip(results, references):
            assert_identical(result, reference)

    def test_typed_errors_survive_pickling(self):
        """Regression: default Exception pickling replays args (the
        formatted message) into __init__, so a DeadlineExceeded raised
        in a worker came back doubly wrapped and without its fields."""
        import pickle

        errors = [
            DeadlineExceeded("dp.schedule", 0.25),
            WorkerCrashError("worker pool broke", cuts=(3, 7)),
            WorkerHangError("dispatch exceeded 0.50s"),
            FaultInjectedError("worker.task"),
        ]
        for error in errors:
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error)
            assert str(clone) == str(error)
        assert pickle.loads(pickle.dumps(errors[0])).budget == 0.25
        assert pickle.loads(pickle.dumps(errors[1])).cuts == (3, 7)
        assert pickle.loads(pickle.dumps(errors[3])).site == "worker.task"

    def test_worker_crash_error_fields(self):
        error = WorkerCrashError("pool broke", cuts=(3, 7))
        assert error.cuts == (3, 7)
        assert isinstance(WorkerHangError("stuck"), WorkerCrashError)

    def test_deadline_exceeded_fields(self):
        error = DeadlineExceeded("batch.dispatch", 0.25)
        assert error.site == "batch.dispatch"
        assert error.budget == pytest.approx(0.25)
        assert "250.0 ms" in str(error)
