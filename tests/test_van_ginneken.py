"""Classic single-type algorithm tests."""

import pytest

from repro import (
    BufferLibrary,
    Driver,
    insert_buffers,
    insert_buffers_van_ginneken,
    two_pin_net,
    unbuffered_slack,
)
from repro.errors import AlgorithmError
from repro.units import fF, ps


def test_accepts_buffer_type(line_net, single_buffer):
    result = insert_buffers_van_ginneken(line_net, single_buffer)
    assert result.stats.algorithm == "van_ginneken"
    assert result.stats.library_size == 1


def test_accepts_singleton_library(line_net, single_buffer):
    result = insert_buffers_van_ginneken(line_net, BufferLibrary([single_buffer]))
    assert result.stats.algorithm == "van_ginneken"


def test_rejects_multi_type_library(line_net, small_library):
    with pytest.raises(AlgorithmError):
        insert_buffers_van_ginneken(line_net, small_library)


def test_matches_fast_and_lillis_with_b1(line_net, single_buffer):
    library = BufferLibrary([single_buffer])
    vg = insert_buffers_van_ginneken(line_net, single_buffer)
    fast = insert_buffers(line_net, library, algorithm="fast")
    lillis = insert_buffers(line_net, library, algorithm="lillis")
    assert vg.slack == pytest.approx(fast.slack, abs=1e-18)
    assert vg.slack == pytest.approx(lillis.slack, abs=1e-18)
    assert vg.assignment.keys() == fast.assignment.keys()


def _repeater():
    """A strong repeater for which long-line insertion clearly pays."""
    from repro import BufferType

    return BufferType("rep", driving_resistance=120.0,
                      input_capacitance=fF(8.0), intrinsic_delay=ps(30.0))


def test_improves_long_line():
    net = two_pin_net(length=10_000.0, sink_capacitance=fF(15.0),
                      required_arrival=ps(2000.0), driver=Driver(300.0),
                      num_segments=40)
    result = insert_buffers_van_ginneken(net, _repeater())
    assert result.slack > unbuffered_slack(net) + ps(10.0)
    assert result.num_buffers >= 1


def test_equal_spacing_on_uniform_line():
    """On a uniform line the optimal repeaters are near-evenly spaced —
    the textbook sanity check for van Ginneken implementations."""
    segments = 60
    net = two_pin_net(length=30_000.0, sink_capacitance=fF(5.0),
                      required_arrival=ps(5000.0), driver=Driver(300.0),
                      num_segments=segments)
    result = insert_buffers_van_ginneken(net, _repeater())
    positions = sorted(result.assignment)
    assert len(positions) >= 2
    gaps = [b - a for a, b in zip(positions, positions[1:])]
    assert max(gaps) - min(gaps) <= 2  # node ids are consecutive line order


def test_verifies_against_oracle(line_net, single_buffer):
    result = insert_buffers_van_ginneken(line_net, single_buffer)
    assert result.verify(line_net).slack == pytest.approx(result.slack, abs=1e-18)
