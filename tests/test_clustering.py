"""Library-clustering (Alpert et al. baseline) tests."""

import pytest

from repro import cluster_library, paper_library, uniform_random_library
from repro.errors import LibraryError


def test_cluster_reduces_to_target_size():
    lib = paper_library(32)
    for target in (1, 4, 8, 16):
        assert cluster_library(lib, target, seed=0).size == target


def test_cluster_returns_subset_of_original_cells():
    lib = paper_library(32)
    reduced = cluster_library(lib, 8, seed=0)
    names = {b.name for b in lib}
    assert all(b.name in names for b in reduced)


def test_cluster_full_size_is_identity_set():
    lib = paper_library(8)
    reduced = cluster_library(lib, 8, seed=0)
    assert {b.name for b in reduced} == {b.name for b in lib}


def test_cluster_deterministic_per_seed():
    lib = uniform_random_library(40, seed=5)
    a = cluster_library(lib, 6, seed=1)
    b = cluster_library(lib, 6, seed=1)
    assert {x.name for x in a} == {x.name for x in b}


def test_cluster_target_validation():
    lib = paper_library(8)
    with pytest.raises(LibraryError):
        cluster_library(lib, 0)
    with pytest.raises(LibraryError):
        cluster_library(lib, 9)


def test_cluster_spreads_over_strength_ladder():
    # Representatives of a 64-ladder at target 4 should span a wide
    # resistance range, not collapse into one corner.
    lib = paper_library(64)
    reduced = cluster_library(lib, 4, seed=0)
    r_lo, r_hi = reduced.resistance_range()
    assert r_hi / r_lo > 4.0


def test_cluster_handles_duplicate_parameter_points():
    # Many identical cells must not crash k-means++ (zero weights).
    from repro import BufferLibrary, BufferType
    from repro.units import fF, ps

    cells = [BufferType(f"b{i}", 1000.0, fF(5.0), ps(30.0)) for i in range(6)]
    cells.append(BufferType("odd", 300.0, fF(15.0), ps(33.0)))
    reduced = cluster_library(BufferLibrary(cells), 2, seed=0)
    assert reduced.size == 2
