"""Pinned regression corpus: exact golden slacks on fixed instances.

These instances and their optimal slacks were computed at authoring
time with both algorithms agreeing and the timing oracle confirming.
Any future change to the candidate algebra, the pruning rules or the
timing model that shifts a ninth significant digit here is a
regression, not noise: every computation involved is deterministic
float arithmetic on fixed inputs.
"""

import pytest

from repro import (
    Driver,
    caterpillar_net,
    h_tree_net,
    insert_buffers,
    paper_library,
    prim_steiner_net,
    random_tree_net,
    segment_tree,
    two_pin_net,
    unbuffered_slack,
)
from repro.units import fF, ps


def _random15():
    return segment_tree(
        random_tree_net(15, seed=101,
                        required_arrival=(ps(300.0), ps(1200.0)),
                        driver=Driver(250.0)),
        400.0,
    )


def _caterpillar10():
    return caterpillar_net(10, required_arrival=(ps(100.0), ps(900.0)),
                           driver=Driver(300.0), seed=7)


def _htree2():
    return h_tree_net(2, span=6000.0, sink_capacitance=fF(12.0),
                      required_arrival=ps(1000.0), driver=Driver(250.0))


def _prim20():
    return prim_steiner_net(20, seed=55, required_arrival=ps(1500.0),
                            driver=Driver(200.0))


def _line24():
    return two_pin_net(length=12_000.0, sink_capacitance=fF(25.0),
                       required_arrival=ps(1500.0), driver=Driver(250.0),
                       num_segments=24)


#: (case, builder, b, unbuffered slack, optimal slack, buffer count)
CORPUS = [
    ("random15", _random15, 8, -8.18546876724227e-09,
     -7.24986910701664e-10, 36),
    ("caterpillar10", _caterpillar10, 8, -1.9360043246412093e-11,
     -8.212043246412125e-12, 2),
    ("htree2", _htree2, 4, -1.2620431249999997e-10,
     5.261216875000002e-10, 6),
    ("prim20", _prim20, 8, -3.364717377555913e-09,
     3.056407205143744e-10, 15),
    ("line24", _line24, 16, 4.71253999999999e-10,
     9.116419999999985e-10, 3),
]

IDS = [case[0] for case in CORPUS]


@pytest.mark.parametrize("name,builder,b,base,golden,buffers", CORPUS, ids=IDS)
def test_unbuffered_slack_golden(name, builder, b, base, golden, buffers):
    assert unbuffered_slack(builder()) == pytest.approx(base, rel=1e-9)


@pytest.mark.parametrize("name,builder,b,base,golden,buffers", CORPUS, ids=IDS)
def test_optimal_slack_golden(name, builder, b, base, golden, buffers):
    tree = builder()
    result = insert_buffers(tree, paper_library(b))
    assert result.slack == pytest.approx(golden, rel=1e-9)
    assert result.num_buffers == buffers


@pytest.mark.parametrize("name,builder,b,base,golden,buffers", CORPUS, ids=IDS)
def test_lillis_matches_golden(name, builder, b, base, golden, buffers):
    tree = builder()
    result = insert_buffers(tree, paper_library(b), algorithm="lillis")
    assert result.slack == pytest.approx(golden, rel=1e-9)


@pytest.mark.parametrize("name,builder,b,base,golden,buffers", CORPUS, ids=IDS)
def test_golden_verifiable_by_oracle(name, builder, b, base, golden, buffers):
    tree = builder()
    result = insert_buffers(tree, paper_library(b))
    assert result.verify(tree).slack == pytest.approx(result.slack, rel=1e-12)
