"""Dominance- and convex-pruning tests (paper Lemmas 2 and 3)."""

import pytest

from helpers import make_candidates, qc

from repro.core.pruning import (
    convex_prune,
    is_convex,
    is_nonredundant,
    prune_dominated,
)


class TestPruneDominated:
    def test_keeps_increasing_q(self):
        cands = make_candidates([(1.0, 0.0), (2.0, 1.0), (3.0, 2.0)])
        assert prune_dominated(cands) == cands

    def test_drops_lower_q_at_higher_c(self):
        cands = make_candidates([(5.0, 0.0), (4.0, 1.0), (6.0, 2.0)])
        assert qc(prune_dominated(cands)) == [(5.0, 0.0), (6.0, 2.0)]

    def test_equal_c_keeps_best_q(self):
        cands = make_candidates([(1.0, 0.0), (5.0, 0.0), (3.0, 0.0)])
        assert qc(prune_dominated(cands)) == [(5.0, 0.0)]

    def test_equal_everything_keeps_first(self):
        cands = make_candidates([(1.0, 0.0), (1.0, 0.0)])
        kept = prune_dominated(cands)
        assert len(kept) == 1 and kept[0] is cands[0]

    def test_empty(self):
        assert prune_dominated([]) == []

    def test_single(self):
        cands = make_candidates([(1.0, 1.0)])
        assert prune_dominated(cands) == cands

    def test_requires_sorted_input(self):
        cands = make_candidates([(1.0, 2.0), (2.0, 1.0)])
        with pytest.raises(ValueError):
            prune_dominated(cands)

    def test_output_always_nonredundant(self):
        cands = make_candidates(
            [(3.0, 0.0), (1.0, 1.0), (4.0, 2.0), (4.0, 3.0), (9.0, 3.0), (2.0, 4.0)]
        )
        assert is_nonredundant(prune_dominated(cands))


class TestConvexPrune:
    def test_keeps_strictly_concave(self):
        # Slopes 3 then 1: strictly decreasing -> all on hull.
        cands = make_candidates([(0.0, 0.0), (3.0, 1.0), (4.0, 2.0)])
        assert convex_prune(cands) == cands

    def test_prunes_below_segment(self):
        # Paper's Figure 2 situation: middle point under the chord.
        cands = make_candidates([(0.0, 0.0), (0.5, 1.0), (2.0, 2.0)])
        assert qc(convex_prune(cands)) == [(0.0, 0.0), (2.0, 2.0)]

    def test_prunes_collinear_middle(self):
        # Eq. (2) uses <=: exact collinearity is pruned too.
        cands = make_candidates([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        assert qc(convex_prune(cands)) == [(0.0, 0.0), (2.0, 2.0)]

    def test_cascading_pops(self):
        # Removing one interior point exposes another: Graham backtrack.
        cands = make_candidates(
            [(0.0, 0.0), (4.0, 1.0), (5.0, 2.0), (6.0, 3.0), (20.0, 4.0)]
        )
        assert qc(convex_prune(cands)) == [(0.0, 0.0), (20.0, 4.0)]

    def test_two_points_always_hull(self):
        cands = make_candidates([(0.0, 0.0), (1.0, 5.0)])
        assert convex_prune(cands) == cands

    def test_empty_and_single(self):
        assert convex_prune([]) == []
        single = make_candidates([(1.0, 1.0)])
        assert convex_prune(single) == single

    def test_non_destructive(self):
        cands = make_candidates([(0.0, 0.0), (0.5, 1.0), (2.0, 2.0)])
        convex_prune(cands)
        assert len(cands) == 3  # input untouched

    def test_output_is_convex(self):
        cands = make_candidates(
            [(0.0, 0.0), (1.0, 1.0), (1.5, 2.0), (3.4, 3.0), (3.6, 4.0), (3.7, 5.0)]
        )
        assert is_convex(convex_prune(cands))

    def test_hull_preserves_best_for_any_resistance(self):
        """Lemma 3: for every R >= 0 the hull attains the same maximum."""
        cands = make_candidates(
            [(0.0, 0.0), (2.5, 1.0), (3.0, 2.0), (5.8, 3.0), (6.0, 4.0)]
        )
        hull = convex_prune(cands)
        for resistance in (0.0, 0.1, 0.5, 1.0, 2.0, 10.0):
            full_best = max(c.q - resistance * c.c for c in cands)
            hull_best = max(c.q - resistance * c.c for c in hull)
            assert hull_best == pytest.approx(full_best)


class TestInvariantHelpers:
    def test_is_nonredundant_rejects_equal_c(self):
        assert not is_nonredundant(make_candidates([(1.0, 0.0), (2.0, 0.0)]))

    def test_is_nonredundant_rejects_decreasing_q(self):
        assert not is_nonredundant(make_candidates([(2.0, 0.0), (1.0, 1.0)]))

    def test_is_convex_rejects_collinear(self):
        assert not is_convex(make_candidates([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]))

    def test_is_convex_accepts_hull(self):
        assert is_convex(make_candidates([(0.0, 0.0), (3.0, 1.0), (4.0, 2.0)]))
