"""Batch engine tests: solve_many equivalence, SolverPool, plumbing."""

import pytest

from helpers import random_small_tree

from repro import (
    SolverPool,
    compile_net,
    insert_buffers,
    paper_library,
    solve_many,
    uniform_random_library,
)
from repro.core.batch import parallel_map
from repro.errors import AlgorithmError
from repro.tree.node import Driver


@pytest.fixture(scope="module")
def corpus():
    return [random_small_tree(seed) for seed in range(8)]


def test_serial_matches_individual_solves(corpus):
    library = paper_library(4)
    batch = solve_many(corpus, library, jobs=1)
    for tree, result in zip(corpus, batch):
        reference = insert_buffers(tree, library)
        assert result.slack == reference.slack
        assert result.assignment == reference.assignment


def test_jobs2_matches_serial(corpus):
    library = uniform_random_library(5, seed=99)
    serial = solve_many(corpus, library, jobs=1)
    parallel = solve_many(corpus, library, jobs=2)
    assert [r.slack for r in serial] == [r.slack for r in parallel]
    assert [r.assignment for r in serial] == [r.assignment for r in parallel]
    assert [r.driver_load for r in serial] == [r.driver_load for r in parallel]


def test_jobs2_soa_matches_serial_object(corpus):
    library = paper_library(3)
    serial = solve_many(corpus, library, jobs=1, backend="object")
    parallel = solve_many(corpus, library, jobs=2, backend="soa")
    assert [r.slack for r in serial] == [r.slack for r in parallel]
    assert [r.assignment for r in serial] == [r.assignment for r in parallel]


def test_algorithm_and_options_forwarded(corpus):
    library = paper_library(2)
    lillis = solve_many(corpus[:3], library, algorithm="lillis", jobs=2)
    assert all(r.stats.algorithm == "lillis" for r in lillis)
    destructive = solve_many(corpus[:3], library, jobs=2,
                             destructive_pruning=True)
    assert all(r.stats.algorithm == "fast-destructive" for r in destructive)


def test_driver_override_applies_to_every_net(corpus):
    library = paper_library(2)
    weak = solve_many(corpus[:2], library, driver=Driver(5000.0))
    strong = solve_many(corpus[:2], library, driver=Driver(10.0))
    for w, s in zip(weak, strong):
        assert s.slack > w.slack


def test_results_preserve_input_order(corpus):
    library = paper_library(2)
    batch = solve_many(corpus, library, jobs=2)
    expected = [insert_buffers(tree, library).slack for tree in corpus]
    assert [r.slack for r in batch] == expected


def test_empty_corpus():
    assert solve_many([], paper_library(2)) == []


def test_bad_jobs_rejected(corpus):
    with pytest.raises(ValueError, match="jobs"):
        solve_many(corpus, paper_library(2), jobs=0)


def test_bad_algorithm_fails_fast_in_parent(corpus):
    with pytest.raises(AlgorithmError):
        solve_many(corpus, paper_library(2), algorithm="bogus", jobs=2)
    with pytest.raises(AlgorithmError):
        solve_many(corpus, paper_library(2), backend="bogus", jobs=2)
    with pytest.raises(AlgorithmError, match="unknown options"):
        solve_many(corpus, paper_library(2), algorithm="lillis", jobs=2,
                   destructive_pruning=True)


class TestSolverPool:
    def test_inline_pool_matches_individual_solves(self, corpus):
        library = paper_library(3)
        with SolverPool(library) as pool:
            results = pool.solve(corpus)
        for tree, result in zip(corpus, results):
            reference = insert_buffers(tree, library)
            assert result.slack == reference.slack
            assert result.assignment == reference.assignment

    def test_pool_persists_across_solve_calls(self, corpus):
        library = paper_library(2)
        expected = [insert_buffers(tree, library).slack for tree in corpus]
        with SolverPool(library, jobs=2) as pool:
            first = pool.solve(corpus[:4])
            second = pool.solve(corpus[4:])
            # The worker pool object survives between calls.
            assert pool._pool is not None
            again = pool.solve(corpus[:2])
        assert [r.slack for r in first + second] == expected
        assert [r.slack for r in again] == expected[:2]

    def test_single_net_still_uses_the_warm_pool(self, corpus):
        library = paper_library(2)
        with SolverPool(library, jobs=2) as pool:
            result = pool.solve([corpus[0]])
            assert pool._pool is not None  # dispatched, not inlined
        assert result[0].slack == insert_buffers(corpus[0], library).slack

    def test_accepts_precompiled_nets(self, corpus):
        library = paper_library(2)
        compiled = [compile_net(tree, library) for tree in corpus[:3]]
        with SolverPool(library) as pool:
            results = pool.solve(compiled)
        assert [r.slack for r in results] == [
            insert_buffers(t, library).slack for t in corpus[:3]]

    def test_closed_pool_raises(self, corpus):
        pool = SolverPool(paper_library(2))
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.solve(corpus[:1])

    def test_bad_context_fails_at_construction(self):
        with pytest.raises(AlgorithmError):
            SolverPool(paper_library(2), algorithm="bogus")
        with pytest.raises(AlgorithmError):
            SolverPool(paper_library(2), backend="bogus")
        with pytest.raises(ValueError, match="jobs"):
            SolverPool(paper_library(2), jobs=0)


def test_parallel_map_serial_and_parallel():
    items = list(range(20))
    assert parallel_map(_square, items, jobs=1) == [x * x for x in items]
    assert parallel_map(_square, items, jobs=2) == [x * x for x in items]


def _square(x):
    return x * x


def test_time_batch_reports_throughput(corpus):
    from repro.experiments import time_batch

    library = paper_library(2)
    measured = time_batch(corpus[:4], library, jobs=1)
    assert measured.num_nets == 4
    assert measured.seconds > 0.0
    assert measured.nets_per_second > 0.0
    assert [r.slack for r in measured.results] == [
        insert_buffers(t, library).slack for t in corpus[:4]
    ]


def test_run_table1_jobs_matches_serial_structure():
    """jobs=2 must produce the same grid cells (timings aside)."""
    from repro.experiments import NetSpec, run_table1

    tiny = NetSpec(name="tiny", paper_sinks=337, sinks=6, target_positions=40)
    serial = run_table1(nets=[tiny], library_sizes=(2, 3), jobs=1)
    parallel = run_table1(nets=[tiny], library_sizes=(2, 3), jobs=2)
    assert [(r.net, r.library_size, r.slack_ps, r.num_buffers)
            for r in serial] == [
        (r.net, r.library_size, r.slack_ps, r.num_buffers) for r in parallel
    ]
