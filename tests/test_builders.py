"""Net-builder tests."""

import pytest

from repro import (
    Driver,
    balanced_tree_net,
    caterpillar_net,
    random_tree_net,
    star_net,
    two_pin_net,
)
from repro.errors import TreeError
from repro.units import TSMC180_WIRE_CAP_PER_UM, TSMC180_WIRE_RES_PER_UM, fF, ps


class TestTwoPin:
    def test_segment_count(self):
        net = two_pin_net(length=1000.0, num_segments=10)
        assert net.num_buffer_positions == 9
        assert net.num_sinks == 1

    def test_single_segment_has_no_positions(self):
        net = two_pin_net(length=1000.0, num_segments=1)
        assert net.num_buffer_positions == 0

    def test_total_parasitics_match_length(self):
        net = two_pin_net(length=2500.0, num_segments=7)
        assert net.total_wire_capacitance() == pytest.approx(
            2500.0 * TSMC180_WIRE_CAP_PER_UM
        )
        total_r = sum(net.edge_to(i).resistance for i in range(1, net.num_nodes))
        assert total_r == pytest.approx(2500.0 * TSMC180_WIRE_RES_PER_UM)

    def test_is_a_path(self):
        net = two_pin_net(length=1000.0, num_segments=5)
        assert net.depth() == 5
        assert all(len(net.children_of(i)) <= 1 for i in range(net.num_nodes))

    def test_rejects_bad_args(self):
        with pytest.raises(TreeError):
            two_pin_net(length=0.0)
        with pytest.raises(TreeError):
            two_pin_net(length=10.0, num_segments=0)

    def test_sink_electrical_data(self):
        net = two_pin_net(
            length=100.0, sink_capacitance=fF(7.0), required_arrival=ps(42.0)
        )
        sink = net.sinks()[0]
        assert sink.capacitance == fF(7.0)
        assert sink.required_arrival == ps(42.0)


class TestStar:
    def test_shape(self):
        net = star_net(5, arm_length=100.0)
        assert net.num_sinks == 5
        assert net.depth() == 1
        assert net.num_buffer_positions == 0

    def test_rejects_zero_sinks(self):
        with pytest.raises(TreeError):
            star_net(0, arm_length=10.0)

    def test_rat_window_randomized(self):
        net = star_net(20, arm_length=10.0, required_arrival=(ps(10.0), ps(90.0)), seed=1)
        rats = [s.required_arrival for s in net.sinks()]
        assert min(rats) >= ps(10.0) and max(rats) <= ps(90.0)
        assert len(set(rats)) > 1


class TestCaterpillar:
    def test_counts(self):
        net = caterpillar_net(6)
        assert net.num_sinks == 6
        assert net.num_buffer_positions == 6  # one tap per sink

    def test_validates(self):
        caterpillar_net(1).validate()
        caterpillar_net(10).validate()

    def test_rejects_zero(self):
        with pytest.raises(TreeError):
            caterpillar_net(0)


class TestBalanced:
    def test_sink_count(self):
        net = balanced_tree_net(depth=3, branching=2)
        assert net.num_sinks == 8
        net = balanced_tree_net(depth=2, branching=3)
        assert net.num_sinks == 9

    def test_depth_zero_is_single_wire(self):
        net = balanced_tree_net(depth=0)
        assert net.num_sinks == 1 and net.num_buffer_positions == 0

    def test_internal_count(self):
        net = balanced_tree_net(depth=3, branching=2)
        assert net.num_buffer_positions == 2 + 4 + 8

    def test_rejects_bad_args(self):
        with pytest.raises(TreeError):
            balanced_tree_net(depth=-1)
        with pytest.raises(TreeError):
            balanced_tree_net(depth=2, branching=0)


class TestRandomTree:
    def test_reproducible(self):
        a = random_tree_net(25, seed=3)
        b = random_tree_net(25, seed=3)
        assert a.num_nodes == b.num_nodes
        assert [n.capacitance for n in a.sinks()] == [n.capacitance for n in b.sinks()]

    def test_different_seeds_differ(self):
        a = random_tree_net(25, seed=3)
        b = random_tree_net(25, seed=4)
        caps_a = [n.capacitance for n in a.sinks()]
        caps_b = [n.capacitance for n in b.sinks()]
        assert caps_a != caps_b

    def test_sink_count(self):
        assert random_tree_net(40, seed=0).num_sinks == 40

    def test_sink_caps_in_paper_range(self):
        net = random_tree_net(40, seed=0)
        for sink in net.sinks():
            assert fF(2.0) <= sink.capacitance <= fF(41.0)

    def test_steiner_positions_flag(self):
        with_pos = random_tree_net(10, seed=0, steiner_buffer_positions=True)
        without = random_tree_net(10, seed=0, steiner_buffer_positions=False)
        assert with_pos.num_buffer_positions > 0
        assert without.num_buffer_positions == 0

    def test_driver_attached(self):
        net = random_tree_net(5, seed=0, driver=Driver(123.0))
        assert net.driver.resistance == 123.0

    def test_single_sink(self):
        net = random_tree_net(1, seed=0)
        assert net.num_sinks == 1
        net.validate()

    def test_rejects_zero_sinks(self):
        with pytest.raises(TreeError):
            random_tree_net(0, seed=0)

    def test_edge_parasitics_proportional_to_length(self):
        net = random_tree_net(15, seed=2)
        for node_id in range(1, net.num_nodes):
            edge = net.edge_to(node_id)
            assert edge.resistance == pytest.approx(
                edge.length * TSMC180_WIRE_RES_PER_UM
            )
            assert edge.capacitance == pytest.approx(
                edge.length * TSMC180_WIRE_CAP_PER_UM
            )
