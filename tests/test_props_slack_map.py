"""Property tests for the slack-map analysis."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import random_small_tree

from repro import evaluate_assignment, insert_buffers, uniform_random_library
from repro.timing.slack_map import compute_slack_map

seeds = st.integers(min_value=0, max_value=5_000)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds, seeds)
def test_slack_map_consistent_with_report(tree_seed, lib_seed):
    tree = random_small_tree(tree_seed)
    library = uniform_random_library(3, seed=lib_seed)
    result = insert_buffers(tree, library)
    slack_map = compute_slack_map(tree, result.assignment)
    report = evaluate_assignment(tree, result.assignment)

    scale = max(1.0, abs(report.slack))
    # Worst slack agrees with the oracle.
    assert abs(slack_map.worst_slack - report.slack) <= 1e-9 * scale
    # Sink slacks agree individually.
    for sink_id, slack in report.sink_slacks.items():
        assert abs(slack_map.slack[sink_id] - slack) <= 1e-9 * scale
    # No node is slacker than the worst sink... the other way around:
    # every node's slack is at least the worst slack.
    for slack in slack_map.slack.values():
        assert slack >= slack_map.worst_slack - 1e-12 * scale


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds, seeds)
def test_critical_path_is_root_to_critical_sink(tree_seed, lib_seed):
    tree = random_small_tree(tree_seed)
    library = uniform_random_library(2, seed=lib_seed)
    result = insert_buffers(tree, library)
    slack_map = compute_slack_map(tree, result.assignment)
    report = evaluate_assignment(tree, result.assignment)

    path = slack_map.critical_path(tree, tolerance=1e-9)
    assert path[0] == tree.root_id
    # Ties between equally critical sinks are legal: the path must end
    # at *a* sink whose slack equals the worst slack.
    end = tree.node(path[-1])
    assert end.is_sink
    scale = max(1.0, abs(report.slack))
    assert abs(report.sink_slacks[path[-1]] - report.slack) <= 1e-9 * scale
    for parent, child in zip(path, path[1:]):
        assert child in tree.children_of(parent)
