"""Property-based tests for wire, merge and buffer operations.

Two kinds of strategies are used deliberately:

* *float* strategies for invariant properties (nonredundancy, transform
  formulas), which are robust to rounding; and
* *integer-grid* strategies for exact-equality properties (the Theorem 1
  equivalence of the two add-buffer operations), where every product and
  difference is exact in float64, so ties are decided identically by
  both implementations rather than by last-ULP noise.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_candidates, qc

from repro.core.buffer_ops import (
    BufferPlan,
    generate_fast,
    generate_lillis,
    insert_candidates,
)
from repro.core.merge import merge_branches
from repro.core.pruning import is_nonredundant, prune_dominated
from repro.core.wire_ops import add_wire
from repro.library.buffer_type import BufferType

float_points = st.lists(
    st.tuples(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)

grid_points = st.lists(
    st.tuples(
        st.integers(min_value=-500, max_value=500),
        st.integers(min_value=0, max_value=500),
    ),
    min_size=1,
    max_size=25,
)

wires = st.tuples(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)

grid_buffers = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=100),   # R
        st.integers(min_value=0, max_value=50),    # C
        st.integers(min_value=0, max_value=10),    # K
    ),
    min_size=1,
    max_size=10,
)


def nonredundant(raw):
    return prune_dominated(
        make_candidates(sorted(((float(q), float(c)) for q, c in raw),
                               key=lambda p: (p[1], p[0])))
    )


def make_plan(specs):
    return BufferPlan(
        0,
        [
            BufferType(f"b{i}", float(r), float(c), float(k))
            for i, (r, c, k) in enumerate(specs)
        ],
    )


@given(float_points, wires)
def test_add_wire_keeps_invariant(raw, wire):
    resistance, capacitance = wire
    out = add_wire(nonredundant(raw), resistance, capacitance)
    assert is_nonredundant(out)


@given(float_points, wires)
def test_add_wire_transform_values(raw, wire):
    resistance, capacitance = wire
    cands = nonredundant(raw)
    before = [(c.q, c.c) for c in cands]
    out = add_wire(cands, resistance, capacitance)
    expected = {
        (q - resistance * (capacitance / 2.0 + c), c + capacitance)
        for q, c in before
    }
    assert all((c.q, c.c) in expected for c in out)


@given(grid_points, grid_points)
def test_merge_closure_properties(raw_left, raw_right):
    """merge == the nonredundant closure of all pairwise combinations:
    (a) output nonredundant, (b) every output point is an achievable
    pairing, (c) every pairing is dominated by some output point."""
    left, right = nonredundant(raw_left), nonredundant(raw_right)
    merged = merge_branches(list(left), list(right))
    assert is_nonredundant(merged)

    achievable = {
        (min(a.q, b.q), a.c + b.c) for a, b in itertools.product(left, right)
    }
    assert all((m.q, m.c) in achievable for m in merged)
    for q, c in achievable:
        assert any(m.q >= q and m.c <= c for m in merged), (q, c)


@given(grid_points, grid_buffers)
@settings(max_examples=200)
def test_generate_fast_equals_lillis(raw, specs):
    """The paper's Theorem 1 as a property: the hull walk produces the
    same buffered candidates as the exhaustive scan (exact integer
    arithmetic, so ties included)."""
    cands = nonredundant(raw)
    plan = make_plan(specs)
    assert qc(generate_lillis(cands, plan)) == qc(generate_fast(cands, plan))


@given(grid_points, grid_buffers)
def test_generate_beta_values_match_definition(raw, specs):
    """Every emitted beta equals max(q - K - R c) for its buffer type,
    and betas for omitted buffer types are dominated by emitted ones."""
    cands = nonredundant(raw)
    plan = make_plan(specs)
    out = generate_fast(cands, plan)
    best = {
        buf.name: max(c.q - buf.intrinsic_delay - buf.driving_resistance * c.c
                      for c in cands)
        for buf in plan.by_resistance_desc
    }
    emitted = {c.decision.buffer.name: c for c in out}
    for buf in plan.by_resistance_desc:
        if buf.name in emitted:
            assert emitted[buf.name].q == best[buf.name]
            assert emitted[buf.name].c == buf.input_capacitance
        else:
            assert any(
                c.q >= best[buf.name] and c.c <= buf.input_capacitance
                for c in out
            ), buf.name


@given(grid_points, grid_buffers)
def test_generated_candidates_sorted_nonredundant(raw, specs):
    out = generate_fast(nonredundant(raw), make_plan(specs))
    assert is_nonredundant(out)


@given(grid_points, grid_points)
def test_insert_candidates_is_union_nonredundant(raw_base, raw_new):
    base, new = nonredundant(raw_base), nonredundant(raw_new)
    merged = insert_candidates(list(base), list(new))
    assert is_nonredundant(merged)
    for candidate in itertools.chain(base, new):
        assert any(k.dominates(candidate) for k in merged)
