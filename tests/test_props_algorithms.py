"""End-to-end property tests: random instances, full algorithm stack."""

import random

from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from helpers import SLACK_ATOL

from repro import (
    Driver,
    RoutingTree,
    insert_buffers,
    uniform_random_library,
    unbuffered_slack,
)
from repro.units import fF, ps


def build_random_instance(seed, max_nodes):
    """A random valid tree grown by attaching to random internal nodes."""
    rng = random.Random(seed)
    tree = RoutingTree.with_source(driver=Driver(rng.uniform(50.0, 2000.0)))
    attachable = [tree.root_id]
    internals = []
    for _ in range(rng.randrange(1, max_nodes)):
        parent = rng.choice(attachable)
        node = tree.add_internal(
            parent,
            rng.uniform(0.0, 500.0),
            fF(rng.uniform(0.0, 80.0)),
            buffer_position=rng.random() < 0.8,
        )
        attachable.append(node)
        internals.append(node)
    # Terminate every childless internal with a sink; add a few extras.
    for node in [tree.root_id] + internals:
        if not tree.children_of(node) or (node == tree.root_id and rng.random() < 0.3):
            tree.add_sink(
                node,
                rng.uniform(0.0, 500.0),
                fF(rng.uniform(0.0, 80.0)),
                capacitance=fF(rng.uniform(1.0, 41.0)),
                required_arrival=ps(rng.uniform(-500.0, 1500.0)),
            )
    tree.validate()
    return tree


instance_seeds = st.integers(min_value=0, max_value=10_000)
library_seeds = st.integers(min_value=0, max_value=10_000)
library_sizes = st.integers(min_value=1, max_value=6)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance_seeds, library_seeds, library_sizes)
def test_fast_equals_lillis_everywhere(instance_seed, library_seed, size):
    tree = build_random_instance(instance_seed, max_nodes=10)
    library = uniform_random_library(size, seed=library_seed)
    fast = insert_buffers(tree, library, algorithm="fast")
    lillis = insert_buffers(tree, library, algorithm="lillis")
    assert abs(fast.slack - lillis.slack) <= SLACK_ATOL


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance_seeds, library_seeds)
def test_reported_slack_always_verifiable(instance_seed, library_seed):
    """The reconstructed assignment re-measures to the predicted slack —
    the DP never reports a slack it cannot realize."""
    tree = build_random_instance(instance_seed, max_nodes=12)
    library = uniform_random_library(4, seed=library_seed)
    result = insert_buffers(tree, library)
    measured = result.verify(tree).slack
    scale = max(1.0, abs(result.slack))
    assert abs(measured - result.slack) <= 1e-9 * scale


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance_seeds, library_seeds)
def test_buffering_never_worse_than_unbuffered(instance_seed, library_seed):
    tree = build_random_instance(instance_seed, max_nodes=10)
    library = uniform_random_library(3, seed=library_seed)
    result = insert_buffers(tree, library)
    assert result.slack >= unbuffered_slack(tree) - SLACK_ATOL


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance_seeds, library_seeds)
def test_destructive_mode_never_beats_exact(instance_seed, library_seed):
    tree = build_random_instance(instance_seed, max_nodes=10)
    library = uniform_random_library(4, seed=library_seed)
    exact = insert_buffers(tree, library)
    paper_mode = insert_buffers(tree, library, destructive_pruning=True)
    assert paper_mode.slack <= exact.slack + SLACK_ATOL
    # And what it reports is still honestly realizable.
    measured = paper_mode.verify(tree).slack
    scale = max(1.0, abs(paper_mode.slack))
    assert abs(measured - paper_mode.slack) <= 1e-9 * scale


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance_seeds, library_seeds)
def test_assignment_only_uses_buffer_positions(instance_seed, library_seed):
    tree = build_random_instance(instance_seed, max_nodes=12)
    library = uniform_random_library(3, seed=library_seed)
    result = insert_buffers(tree, library)
    for node_id, buffer in result.assignment.items():
        node = tree.node(node_id)
        assert node.is_buffer_position
        assert node.permits(buffer.name)
