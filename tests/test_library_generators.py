"""Synthetic-library generator tests."""

import pytest

from repro.errors import LibraryError
from repro.library.generators import (
    PAPER_CAPACITANCE_RANGE,
    PAPER_INTRINSIC_RANGE,
    PAPER_RESISTANCE_RANGE,
    geometric_library,
    paper_library,
    uniform_random_library,
)


@pytest.mark.parametrize("size", [1, 2, 8, 16, 32, 64])
def test_paper_library_sizes(size):
    assert paper_library(size).size == size


def test_paper_library_spans_paper_ranges():
    lib = paper_library(64)
    r_lo, r_hi = lib.resistance_range()
    assert r_lo == pytest.approx(PAPER_RESISTANCE_RANGE[0])
    assert r_hi == pytest.approx(PAPER_RESISTANCE_RANGE[1])
    c_lo, c_hi = lib.capacitance_range()
    assert c_lo == pytest.approx(PAPER_CAPACITANCE_RANGE[0])
    assert c_hi == pytest.approx(PAPER_CAPACITANCE_RANGE[1])


def test_paper_library_intrinsic_in_range():
    for buf in paper_library(32):
        assert (
            PAPER_INTRINSIC_RANGE[0] <= buf.intrinsic_delay <= PAPER_INTRINSIC_RANGE[1]
        )


def test_paper_library_r_c_anticorrelated():
    # Strength ladder: as R falls, C rises; so no buffer dominates another.
    lib = paper_library(16)
    assert lib.without_dominated().size == 16


def test_paper_library_rejects_bad_size():
    with pytest.raises(LibraryError):
        paper_library(0)


def test_paper_library_jitter_reproducible():
    a = paper_library(8, jitter=0.05, seed=1)
    b = paper_library(8, jitter=0.05, seed=1)
    c = paper_library(8, jitter=0.05, seed=2)
    assert a == b
    assert a != c


def test_paper_library_jitter_validation():
    with pytest.raises(LibraryError):
        paper_library(8, jitter=1.5)
    with pytest.raises(LibraryError):
        paper_library(8, jitter=-0.1)


def test_paper_library_cost_grows_with_strength():
    lib = paper_library(8)
    by_strength = sorted(lib, key=lambda b: -b.driving_resistance)
    costs = [b.cost for b in by_strength]
    assert costs == sorted(costs)


def test_geometric_library_custom_ranges():
    lib = geometric_library(4, resistance_range=(100.0, 400.0))
    lo, hi = lib.resistance_range()
    assert lo == pytest.approx(100.0) and hi == pytest.approx(400.0)


def test_geometric_library_rejects_bad_range():
    with pytest.raises(LibraryError):
        geometric_library(4, resistance_range=(400.0, 100.0))
    with pytest.raises(LibraryError):
        geometric_library(4, capacitance_range=(0.0, 1.0))


def test_geometric_library_single_buffer():
    lib = geometric_library(1)
    assert lib.size == 1


def test_uniform_random_library_reproducible():
    assert uniform_random_library(16, seed=7) == uniform_random_library(16, seed=7)
    assert uniform_random_library(16, seed=7) != uniform_random_library(16, seed=8)


def test_uniform_random_library_within_ranges():
    lib = uniform_random_library(50, seed=3)
    r_lo, r_hi = lib.resistance_range()
    assert r_lo >= PAPER_RESISTANCE_RANGE[0]
    assert r_hi <= PAPER_RESISTANCE_RANGE[1]


def test_uniform_random_library_rejects_bad_size():
    with pytest.raises(LibraryError):
        uniform_random_library(0, seed=1)
