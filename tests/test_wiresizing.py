"""Simultaneous wire-sizing + buffer-insertion tests."""

import itertools

import pytest

from helpers import SLACK_ATOL, random_small_tree

from repro import (
    Driver,
    evaluate_slack,
    insert_buffers,
    paper_library,
    two_pin_net,
    uniform_random_library,
)
from repro.errors import AlgorithmError, LibraryError
from repro.units import fF, ps
from repro.wiresizing import (
    WireClass,
    default_wire_classes,
    size_wires_and_insert_buffers,
    verify_wire_sizing,
)

UNIT_CLASS = WireClass("unit", 1.0, 1.0)


@pytest.fixture
def net():
    return two_pin_net(length=8000.0, sink_capacitance=fF(20.0),
                       required_arrival=ps(900.0), driver=Driver(200.0),
                       num_segments=12)


class TestWireLibrary:
    def test_default_classes_shape(self):
        classes = default_wire_classes(3, max_width=4.0)
        assert len(classes) == 3
        assert classes[0].resistance_scale == pytest.approx(1.0)
        assert classes[0].capacitance_scale == pytest.approx(1.0)
        # Wider: less resistance, more capacitance.
        assert classes[-1].resistance_scale == pytest.approx(0.25)
        assert classes[-1].capacitance_scale > 1.0

    def test_monotone_scales(self):
        classes = default_wire_classes(5, max_width=6.0)
        r = [wc.resistance_scale for wc in classes]
        c = [wc.capacitance_scale for wc in classes]
        assert r == sorted(r, reverse=True)
        assert c == sorted(c)

    def test_validation(self):
        with pytest.raises(LibraryError):
            default_wire_classes(0)
        with pytest.raises(LibraryError):
            default_wire_classes(2, max_width=0.5)
        with pytest.raises(LibraryError):
            WireClass("bad", 0.0, 1.0)
        with pytest.raises(LibraryError):
            WireClass("bad", 1.0, -1.0)


class TestReducesToPlain:
    def test_single_unit_class_equals_insert_buffers(self, net):
        library = paper_library(4)
        plain = insert_buffers(net, library)
        sized = size_wires_and_insert_buffers(net, library, [UNIT_CLASS])
        assert sized.slack == pytest.approx(plain.slack, abs=SLACK_ATOL)
        assert sized.buffer_assignment.keys() == plain.assignment.keys()

    def test_every_edge_gets_a_width(self, net):
        library = paper_library(2)
        sized = size_wires_and_insert_buffers(net, library, [UNIT_CLASS])
        # Every non-root node terminates an edge.
        assert len(sized.wire_assignment) == net.num_nodes - 1


class TestImprovement:
    def test_wider_wires_never_hurt(self, net):
        library = paper_library(4)
        one = size_wires_and_insert_buffers(net, library,
                                            default_wire_classes(1))
        three = size_wires_and_insert_buffers(net, library,
                                              default_wire_classes(3))
        assert three.slack >= one.slack - SLACK_ATOL

    def test_sizing_helps_resistive_line(self):
        """A long thin line gains real slack from widening."""
        net = two_pin_net(length=15_000.0, sink_capacitance=fF(10.0),
                          required_arrival=ps(3000.0), driver=Driver(150.0),
                          num_segments=20)
        library = paper_library(4)
        base = size_wires_and_insert_buffers(net, library,
                                             default_wire_classes(1))
        sized = size_wires_and_insert_buffers(net, library,
                                              default_wire_classes(4))
        assert sized.slack > base.slack + ps(1.0)
        used = {wc.name for wc in sized.wire_assignment.values()}
        assert len(used) >= 2  # actually mixes widths


class TestVerification:
    def test_oracle_reproduces_slack(self, net):
        library = paper_library(4)
        sized = size_wires_and_insert_buffers(net, library,
                                              default_wire_classes(3))
        report = verify_wire_sizing(net, sized)
        assert report.slack == pytest.approx(sized.slack, rel=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    def test_oracle_on_random_trees(self, seed):
        tree = random_small_tree(seed)
        library = uniform_random_library(3, seed=seed)
        sized = size_wires_and_insert_buffers(tree, library,
                                              default_wire_classes(3))
        report = verify_wire_sizing(tree, sized)
        assert report.slack == pytest.approx(sized.slack, rel=1e-12)


class TestBruteForce:
    def test_matches_exhaustive_on_tiny_instance(self):
        """Enumerate every (wire class per edge) x (buffer per position)
        combination and compare with the DP."""
        net = two_pin_net(length=4000.0, sink_capacitance=fF(20.0),
                          required_arrival=ps(900.0), driver=Driver(250.0),
                          num_segments=3)
        library = paper_library(2)
        classes = default_wire_classes(2, max_width=3.0)
        sized = size_wires_and_insert_buffers(net, library, classes)

        from repro.wiresizing import apply_wire_assignment

        edges = [n for n in range(1, net.num_nodes)]
        positions = [n.node_id for n in net.buffer_positions()]
        best = float("-inf")
        buffer_choices = [None] + list(library.buffers)
        for wire_combo in itertools.product(classes, repeat=len(edges)):
            wire_assignment = dict(zip(edges, wire_combo))
            resized, id_map = apply_wire_assignment(net, wire_assignment)
            for buf_combo in itertools.product(buffer_choices,
                                               repeat=len(positions)):
                assignment = {
                    id_map[pos]: buf
                    for pos, buf in zip(positions, buf_combo)
                    if buf is not None
                }
                slack = evaluate_slack(resized, assignment)
                best = max(best, slack)
        assert sized.slack == pytest.approx(best, rel=1e-12)


class TestValidation:
    def test_empty_classes_rejected(self, net):
        with pytest.raises(AlgorithmError):
            size_wires_and_insert_buffers(net, paper_library(2), [])

    def test_duplicate_names_rejected(self, net):
        with pytest.raises(AlgorithmError):
            size_wires_and_insert_buffers(
                net, paper_library(2), [UNIT_CLASS, WireClass("unit", 0.5, 2.0)]
            )

    def test_stats_labeled(self, net):
        sized = size_wires_and_insert_buffers(net, paper_library(2),
                                              default_wire_classes(2))
        assert sized.stats.algorithm == "fast-wiresizing"
        assert "WireSizingResult" in str(sized)
