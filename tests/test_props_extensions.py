"""Property-based tests for the extensions: cost, polarity, wire sizing."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import SLACK_ATOL, random_small_tree

from repro import (
    evaluate_slack,
    insert_buffers,
    insert_buffers_with_inverters,
    mixed_paper_library,
    uniform_random_library,
    verify_polarities,
)
from repro.cost import slack_cost_frontier
from repro.errors import InfeasibleError
from repro.wiresizing import (
    default_wire_classes,
    size_wires_and_insert_buffers,
    verify_wire_sizing,
)

seeds = st.integers(min_value=0, max_value=5_000)
sizes = st.integers(min_value=1, max_value=5)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds, seeds)
def test_cost_frontier_properties(tree_seed, lib_seed):
    tree = random_small_tree(tree_seed)
    library = uniform_random_library(3, seed=lib_seed)
    frontier = slack_cost_frontier(tree, library)
    # Monotone in both coordinates.
    costs = [p.cost for p in frontier]
    slacks = [p.slack for p in frontier]
    assert costs == sorted(costs) and len(set(costs)) == len(costs)
    assert slacks == sorted(slacks)
    # Ends at the unconstrained optimum.
    optimum = insert_buffers(tree, library)
    assert abs(frontier[-1].slack - optimum.slack) <= SLACK_ATOL
    # Every point is honestly realizable and its cost is its size.
    for point in frontier:
        assert len(point.assignment) == point.cost
        measured = evaluate_slack(tree, point.assignment)
        scale = max(1.0, abs(point.slack))
        assert abs(measured - point.slack) <= 1e-9 * scale


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds, seeds, sizes)
def test_polarity_with_random_sink_phases(tree_seed, lib_seed, size):
    tree = random_small_tree(tree_seed)
    # Randomly flip some sink polarities (deterministically per seed).
    rng = random.Random(tree_seed * 7919 + 13)
    for sink in tree.sinks():
        if rng.random() < 0.4:
            sink.polarity = -1
    library = mixed_paper_library(max(size, 2), inverter_fraction=0.5,
                                  jitter=0.05, seed=lib_seed)
    try:
        result = insert_buffers_with_inverters(tree, library)
    except InfeasibleError:
        # Legal only if some sink truly needs a phase we cannot build:
        # with inverters present this must mean... nothing: inverters
        # exist, so infeasibility would be a bug.
        raise AssertionError("infeasible despite inverters in the library")
    assert verify_polarities(tree, result.assignment)
    measured = evaluate_slack(tree, result.assignment)
    scale = max(1.0, abs(result.slack))
    assert abs(measured - result.slack) <= 1e-9 * scale
    # Cross-check the two generation modes.
    lillis = insert_buffers_with_inverters(tree, library, algorithm="lillis")
    assert abs(result.slack - lillis.slack) <= SLACK_ATOL


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds, seeds)
def test_wiresizing_properties(tree_seed, lib_seed):
    tree = random_small_tree(tree_seed)
    library = uniform_random_library(3, seed=lib_seed)
    classes = default_wire_classes(3)
    sized = size_wires_and_insert_buffers(tree, library, classes)
    # Never worse than the unsized optimum.
    plain = insert_buffers(tree, library)
    assert sized.slack >= plain.slack - SLACK_ATOL
    # Every edge got exactly one width, and the result re-measures.
    assert len(sized.wire_assignment) == tree.num_nodes - 1
    report = verify_wire_sizing(tree, sized)
    scale = max(1.0, abs(sized.slack))
    assert abs(report.slack - sized.slack) <= 1e-9 * scale
