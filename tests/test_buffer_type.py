"""BufferType validation and delay-model tests."""

import math

import pytest

from repro import BufferType
from repro.errors import LibraryError
from repro.units import fF, ps


def make(name="b", r=1000.0, c=fF(5.0), k=ps(30.0), cost=1.0):
    return BufferType(name, r, c, k, cost)


def test_linear_delay_model():
    buf = make(r=2000.0, c=fF(3.0), k=ps(25.0))
    load = fF(10.0)
    assert math.isclose(buf.delay(load), ps(25.0) + 2000.0 * load)


def test_delay_with_zero_load_is_intrinsic():
    buf = make(k=ps(29.0))
    assert buf.delay(0.0) == ps(29.0)


def test_rejects_non_positive_resistance():
    with pytest.raises(LibraryError):
        make(r=0.0)
    with pytest.raises(LibraryError):
        make(r=-5.0)


def test_rejects_negative_capacitance():
    with pytest.raises(LibraryError):
        make(c=-fF(1.0))


def test_rejects_negative_intrinsic():
    with pytest.raises(LibraryError):
        make(k=-ps(1.0))


def test_rejects_negative_cost():
    with pytest.raises(LibraryError):
        make(cost=-1.0)


def test_zero_capacitance_allowed():
    # An idealized buffer: legal, exercised in algorithm edge tests.
    assert make(c=0.0).input_capacitance == 0.0


def test_dominates_all_three_axes():
    better = make("x", r=500.0, c=fF(2.0), k=ps(20.0))
    worse = make("y", r=600.0, c=fF(3.0), k=ps(25.0))
    assert better.dominates(worse)
    assert not worse.dominates(better)


def test_dominates_ignores_cost():
    cheap = make("x", cost=0.5)
    pricey = make("y", cost=9.0)
    assert cheap.dominates(pricey) and pricey.dominates(cheap)


def test_dominates_is_reflexive():
    buf = make()
    assert buf.dominates(buf)


def test_not_dominating_when_tradeoff():
    low_r = make("x", r=500.0, c=fF(10.0))
    low_c = make("y", r=2000.0, c=fF(2.0))
    assert not low_r.dominates(low_c)
    assert not low_c.dominates(low_r)


def test_frozen():
    buf = make()
    with pytest.raises(AttributeError):
        buf.driving_resistance = 1.0


def test_str_mentions_name_and_units():
    text = str(make("BUF_X3"))
    assert "BUF_X3" in text and "ohm" in text and "fF" in text and "ps" in text
