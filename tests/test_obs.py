"""Observability layer tests: metrics, spans, profiler, correlation.

Four contracts are locked here:

* the **metrics registry** renders valid Prometheus text exposition and
  the ``/metrics`` name/type/help inventory is a golden schema
  (``tests/data/metrics_schema.json``) — adding, renaming or retyping a
  metric shows up as a reviewable golden diff;
* the **tracer** round-trips through the Chrome ``trace_event`` export:
  spans nest, worker spans re-parent onto their own tracks, and every
  event carries the request id;
* **request correlation** survives the process-pool boundary (the id
  shipped in partition task tuples comes back in worker-side spans) and
  is echoed in error payloads (the 504 path);
* the **kernel profiler** leaves the op callables untouched when
  inactive and counts calls exactly when active.

Regenerate the metrics golden after an intentional change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \\
        tests/test_obs.py
"""

from __future__ import annotations

import asyncio
import io
import json
import logging
import os
import re
import threading
from pathlib import Path

import pytest

from repro import Driver, compile_net, paper_library, random_tree_net
from repro.errors import ServiceError
from repro.obs.logging import JsonLogFormatter, configure_json_logging
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    CounterGroup,
    Gauge,
    Histogram,
    MetricsRegistry,
    UptimeClock,
)
from repro.obs.profiler import (
    KernelProfiler,
    active_profiler,
    instrument_ops,
    profile_scope,
    set_bypass,
)
from repro.obs.spans import (
    Tracer,
    active_tracer,
    current_request_id,
    new_request_id,
    request_scope,
    trace_scope,
)
from repro.parallel import plan_partitions, solve_partitioned
from repro.service.client import ServiceClient
from repro.service.server import BufferServer
from repro.tree.io import library_to_dict, tree_to_dict
from repro.tree.segmenting import segment_to_position_count
from repro.units import ps

GOLDEN = Path(__file__).parent / "data" / "metrics_schema.json"


def small_net(seed=11, sinks=8):
    return random_tree_net(
        sinks, seed=seed, required_arrival=(ps(500.0), ps(2000.0)),
        driver=Driver(resistance=200.0),
    )


def partitionable_net(seed=0, sinks=24, positions=800):
    base = random_tree_net(
        sinks, seed=seed, required_arrival=(ps(400.0), ps(2500.0)),
        driver=Driver(resistance=200.0),
    )
    return segment_to_position_count(base, positions)


# ---------------------------------------------------------------------------
# Metrics registry


class TestMetrics:
    def test_counter_unlabeled(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3
        assert "c_total 3" in counter.render()

    def test_counter_labeled_series(self):
        counter = Counter("c_total", "help")
        counter.inc(backend="soa")
        counter.inc(3, backend="object")
        assert counter.value(backend="soa") == 1
        assert counter.value(backend="object") == 3
        rendered = "\n".join(counter.render())
        assert 'c_total{backend="object"} 3' in rendered
        assert 'c_total{backend="soa"} 1' in rendered

    def test_gauge_callback_reads_at_scrape(self):
        box = [1.0]
        gauge = Gauge("g", "help", fn=lambda: box[0])
        assert gauge.value() == 1.0
        box[0] = 7.5
        assert "g 7.5" in gauge.render()

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram("h", "help", (1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        rendered = "\n".join(histogram.render())
        assert 'h_bucket{le="1"} 2' in rendered
        assert 'h_bucket{le="10"} 3' in rendered
        assert 'h_bucket{le="+Inf"} 4' in rendered
        assert "h_count 4" in rendered
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(106.2)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", "help", (2.0, 1.0))

    def test_registry_get_or_create_shares_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help")
        b = registry.counter("x_total", "ignored on re-get")
        assert a is b

    def test_registry_rejects_kind_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("x", "help")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x", "help")

    def test_registry_render_is_exposition_text(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "first").inc()
        registry.histogram("b_seconds", "second", LATENCY_BUCKETS).observe(0.2)
        text = registry.render()
        assert text.endswith("\n")
        assert "# HELP a_total first" in text
        assert "# TYPE a_total counter" in text
        assert "# TYPE b_seconds histogram" in text

    def test_counter_group_is_dict_shaped(self):
        registry = MetricsRegistry()
        group = CounterGroup(registry, "repro_", {
            "errors": "Errors.", "requests_total": "Requests.",
        })
        group["errors"] += 2
        group["requests_total"] = 5
        assert group["errors"] == 2
        assert dict(group) == {"errors": 2, "requests_total": 5}
        assert group.as_dict() == {"errors": 2, "requests_total": 5}
        assert "errors" in group and len(group) == 2
        # Backing metrics follow the Prometheus _total convention and
        # render from the same registry.
        text = registry.render()
        assert "repro_errors_total 2" in text
        assert "repro_requests_total 5" in text

    def test_uptime_clock_restart(self):
        ticks = [10.0]
        clock = UptimeClock(clock=lambda: ticks[0])
        ticks[0] = 14.0
        assert clock.seconds() == 4.0
        clock.restart()
        assert clock.seconds() == 0.0

    def test_registry_uptime_clock_gauge(self):
        registry = MetricsRegistry()
        clock = registry.uptime_clock("up_seconds", "help")
        assert clock.seconds() >= 0.0
        assert "# TYPE up_seconds gauge" in registry.render()


# ---------------------------------------------------------------------------
# Spans and request scope


class TestTracer:
    def test_request_id_shape(self):
        a, b = new_request_id(), new_request_id()
        assert a != b
        assert re.fullmatch(r"[0-9a-f]{16}", a)

    def test_request_scope_nesting(self):
        assert current_request_id() is None
        with request_scope("outer-id"):
            assert current_request_id() == "outer-id"
            with request_scope(None):  # None keeps the caller's id
                assert current_request_id() == "outer-id"
            with request_scope("inner-id"):
                assert current_request_id() == "inner-id"
            assert current_request_id() == "outer-id"
        assert current_request_id() is None

    def test_trace_scope_installs_tracer_and_id(self):
        tracer = Tracer(request_id="abc")
        assert active_tracer() is None
        with trace_scope(tracer):
            assert active_tracer() is tracer
            assert current_request_id() == "abc"
        assert active_tracer() is None
        assert current_request_id() is None

    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
        spans = {name: (start, duration)
                 for name, start, duration, _, _ in tracer.spans()}
        outer_start, outer_duration = spans["outer"]
        inner_start, inner_duration = spans["inner"]
        assert outer_start <= inner_start
        assert inner_start + inner_duration <= outer_start + outer_duration

    def test_begin_end_extra_args(self):
        tracer = Tracer()
        handle = tracer.begin("dispatch", tasks=3)
        tracer.end(handle, spliced=True)
        (name, _, _, tid, args), = tracer.spans()
        assert name == "dispatch"
        assert tid == "main"
        assert args == {"tasks": 3, "spliced": True}

    def test_export_relative_and_adopt(self):
        worker = Tracer(request_id="rid")
        with worker.span("worker.partition"):
            pass
        relative = worker.export_relative()
        # Relative spans are epoch-based offsets: picklable floats.
        assert json.dumps(relative)
        (_, offset, _, _, _), = relative
        assert 0.0 <= offset < 1.0

        parent = Tracer(request_id="rid")
        dispatch_at = 123.0
        parent.adopt(relative, at=dispatch_at, tid="worker-0")
        adopted, = parent.spans()
        assert adopted[0] == "worker.partition"
        assert adopted[3] == "worker-0"
        # Re-based exactly: the worker's epoch maps to the dispatch
        # instant, so the adopted start is ``at + offset``.
        assert adopted[1] == pytest.approx(dispatch_at + offset)

    def test_to_chrome_document(self):
        tracer = Tracer(request_id="feedbeeffeedbeef")
        with tracer.span("route", strategy="soa"):
            pass
        tracer.record("worker.partition", tracer.epoch, 0.001, None,
                      tid="worker-3")
        doc = json.loads(json.dumps(tracer.to_chrome()))
        assert doc["metadata"]["request_id"] == "feedbeeffeedbeef"
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in events} == {"route", "worker.partition"}
        for event in events:
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert event["args"]["request_id"] == "feedbeeffeedbeef"
        track_names = {e["args"]["name"] for e in meta
                       if e["name"] == "thread_name"}
        assert track_names == {"main", "worker-3"}


# ---------------------------------------------------------------------------
# Kernel profiler


class TestProfiler:
    def test_instrument_ops_identity_when_inactive(self):
        ops = (lambda: 1, lambda: 2, lambda: 3, lambda: 4)
        out = instrument_ops(*ops)
        assert out[:4] == ops  # the very same callables, not wrappers
        assert out[4] is None

    def test_profile_scope_counts_calls(self):
        profiler = KernelProfiler()
        with profile_scope(profiler, flush=False):
            assert active_profiler() is profiler
            sink, wire, merge, buffer, end_range = instrument_ops(
                lambda x: x, lambda x: x, lambda x: x, lambda x: x
            )
            sink("s")
            wire("w")
            wire("w")
            buffer("b")
            end_range(17)
        assert active_profiler() is None
        assert profiler.calls == {"sink": 1, "wire": 2, "merge": 0,
                                  "buffer": 1}
        assert profiler.peak_list_length == 17
        assert profiler.ranges == 1
        assert profiler.total_seconds() >= 0.0
        snapshot = profiler.snapshot()
        assert snapshot["calls"]["wire"] == 2

    def test_sampled_kernel_spans_when_tracing(self):
        profiler = KernelProfiler(sample_every=1)
        tracer = Tracer()
        with trace_scope(tracer), profile_scope(profiler, flush=False):
            _, wire, merge, buffer, end_range = instrument_ops(
                lambda: None, lambda: None, lambda: None, lambda: None
            )
            wire()
            merge()
            buffer()
            end_range(5)
        names = {span[0] for span in tracer.spans()}
        assert names == {"kernel.wire", "kernel.merge", "kernel.buffer"}
        for _, _, _, _, args in tracer.spans():
            assert args["list_length"] == 5

    def test_flush_folds_into_registry(self):
        registry = MetricsRegistry()
        profiler = KernelProfiler()
        with profile_scope(profiler, flush=False):
            _, wire, _, _, end_range = instrument_ops(
                lambda: None, lambda: None, lambda: None, lambda: None
            )
            wire()
            end_range(9)
        profiler.flush_to_registry(registry)
        text = registry.render()
        assert 'repro_kernel_op_calls_total{op="wire"} 1' in text
        assert "repro_peak_list_length_count 1" in text

    def test_bypass_disables_everything(self):
        profiler = KernelProfiler()
        try:
            with profile_scope(profiler, flush=False):
                set_bypass(True)
                assert active_profiler() is None
                ops = (lambda: 1, lambda: 2, lambda: 3, lambda: 4)
                assert instrument_ops(*ops)[:4] == ops
        finally:
            set_bypass(False)

    def test_sample_every_validated(self):
        with pytest.raises(ValueError, match="sample_every"):
            KernelProfiler(sample_every=0)


# ---------------------------------------------------------------------------
# JSON logging


class TestJsonLogging:
    def test_formatter_stamps_request_id(self):
        formatter = JsonLogFormatter()
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "hello %s", ("world",),
            None,
        )
        with request_scope("deadbeefdeadbeef"):
            line = json.loads(formatter.format(record))
        assert line["message"] == "hello world"
        assert line["request_id"] == "deadbeefdeadbeef"
        assert line["level"] == "INFO"
        assert line["logger"] == "repro.test"

    def test_formatter_without_request_id(self):
        formatter = JsonLogFormatter()
        record = logging.LogRecord(
            "repro.test", logging.WARNING, __file__, 1, "bare", (), None
        )
        line = json.loads(formatter.format(record))
        assert "request_id" not in line

    def test_configure_json_logging_stream(self):
        stream = io.StringIO()
        root = logging.getLogger()
        previous_handlers = root.handlers[:]
        previous_level = root.level
        try:
            handler = configure_json_logging(stream=stream)
            assert root.handlers == [handler]
            with request_scope("cafecafecafecafe"):
                logging.getLogger("repro.obs.test").info(
                    "structured", extra={"endpoint": "/solve"}
                )
            line = json.loads(stream.getvalue().strip())
            assert line["request_id"] == "cafecafecafecafe"
            assert line["endpoint"] == "/solve"
        finally:
            root.handlers[:] = previous_handlers
            root.setLevel(previous_level)


# ---------------------------------------------------------------------------
# Cross-pool correlation: worker spans re-parent under the request id


class TestWorkerCorrelation:
    def test_partitioned_solve_reparents_worker_spans(self):
        compiled = compile_net(partitionable_net(), paper_library(4))
        plan = plan_partitions(compiled, 2, min_instructions=16)
        assert plan.viable, plan.reason
        request_id = new_request_id()
        tracer = Tracer(request_id=request_id)
        with request_scope(request_id), trace_scope(tracer):
            solve_partitioned(
                compiled, paper_library(4), jobs=2, plan=plan
            )
        spans = tracer.spans()
        names = {span[0] for span in spans}
        assert "dispatch" in names
        assert "parallel.residual" in names
        worker_spans = [s for s in spans if s[0] == "worker.partition"]
        assert len(worker_spans) == len(plan.cuts)
        tracks = {s[3] for s in worker_spans}
        assert tracks == {f"worker-{i}" for i in range(len(plan.cuts))}
        # The Chrome export stamps the originating request id on every
        # event, re-parented worker spans included.
        doc = tracer.to_chrome()
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                assert event["args"]["request_id"] == request_id


# ---------------------------------------------------------------------------
# Service endpoints: /metrics golden schema, trace round-trip, 504 id


class ServerHarness:
    def __init__(self, **kwargs) -> None:
        self.server = BufferServer(port=0, **kwargs)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(10), "server did not start"
        self.client = ServiceClient(port=self.server.port, timeout=30.0)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()

    def shutdown(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture()
def harness():
    h = ServerHarness(jobs=1, cache_size=64)
    try:
        yield h
    finally:
        h.shutdown()


_HELP_RE = re.compile(r"^# HELP (\S+) (.*)$")
_TYPE_RE = re.compile(r"^# TYPE (\S+) (counter|gauge|histogram)$")
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z0-9_]+=\"[^\"]*\""        # optional label set
    r"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})? "
    r"-?[0-9.eE+-]+(\n|$)"                # value
)


def _parse_exposition(text):
    """``(helps, types)`` by metric name; asserts every line is valid."""
    helps, types = {}, {}
    for line in text.splitlines():
        if not line:
            continue
        help_match = _HELP_RE.match(line)
        if help_match:
            helps[help_match.group(1)] = help_match.group(2)
            continue
        type_match = _TYPE_RE.match(line)
        if type_match:
            types[type_match.group(1)] = type_match.group(2)
            continue
        assert _SAMPLE_RE.match(line + "\n"), f"bad exposition line: {line!r}"
    return helps, types


class TestMetricsEndpoint:
    def test_metrics_schema_matches_golden(self, harness):
        """Exercise the endpoints once, then lock the name/type/help
        inventory of the server's registry against the golden."""
        library = paper_library(4)
        harness.client.solve(small_net(), library)
        harness.client.solve(small_net(), library)  # cache hit path
        with pytest.raises(ServiceError):
            harness.client.solve({"nodes": "nonsense"}, library)

        text = harness.client.metrics()
        helps, types = _parse_exposition(text)

        # The server-owned registry is deterministic (instruments are
        # all defined in __init__); pin its full inventory.  The
        # process-wide default registry also renders into the scrape
        # but accumulates lazily across the test process, so only
        # always-on members are asserted below.
        server_names = sorted(
            instrument.name
            for instrument in harness.server.registry.instruments()
        )
        shape = {
            name: {"type": types[name], "help": helps[name]}
            for name in server_names
        }

        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN.write_text(
                json.dumps(shape, indent=2, sort_keys=True) + "\n"
            )
        golden = json.loads(GOLDEN.read_text())
        assert shape == golden, (
            "metrics schema drifted; regenerate with REPRO_REGEN_GOLDEN=1 "
            "if intentional"
        )

        # Always-on kernel-side histograms fed by any solve in this
        # process live in the default registry.
        assert types.get("repro_peak_list_length") == "histogram"
        assert types.get("repro_routing_decisions_total") == "counter"

    def test_metrics_values_reflect_traffic(self, harness):
        library = paper_library(4)
        harness.client.solve(small_net(), library)
        text = harness.client.metrics()
        assert re.search(r"repro_requests_total \d+", text)
        assert re.search(
            r'repro_solves_total\{backend="[a-z]+"\} [1-9]', text
        )
        assert re.search(
            r'repro_request_seconds_count\{endpoint="/solve"\} [1-9]', text
        )
        # Stats counters and registry counters are the same instruments.
        stats = harness.client.stats()
        assert stats["counters"]["solve_requests"] == 1

    def test_metrics_content_type_is_text(self, harness):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", harness.server.port, timeout=10.0
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            body = response.read().decode("utf-8")
        finally:
            connection.close()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        assert "repro_uptime_seconds" in body


class TestTraceRoundtrip:
    def test_solve_trace_is_chrome_trace_event_json(self, harness):
        library = paper_library(4)
        answer = harness.client.solve(small_net(), library, trace=True)
        doc = json.loads(json.dumps(answer["trace"]))  # JSON-safe
        request_id = doc["metadata"]["request_id"]
        assert re.fullmatch(r"[0-9a-f]{16}", request_id)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert {"route", "compile", "cache.lookup"} <= names
        for event in events:
            assert event["args"]["request_id"] == request_id
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0

        # A cached re-solve still traces; the lookup records the hit.
        answer = harness.client.solve(small_net(), library, trace=True)
        assert answer["cached"]
        lookups = [
            e for e in answer["trace"]["traceEvents"]
            if e.get("name") == "cache.lookup" and e["ph"] == "X"
        ]
        assert any(e["args"].get("hit") for e in lookups)

    def test_untraced_solve_has_no_trace_key(self, harness):
        answer = harness.client.solve(small_net(), paper_library(4))
        assert "trace" not in answer


class TestErrorCorrelation:
    def test_504_payload_echoes_request_id(self, harness):
        big = random_tree_net(
            64, seed=3, required_arrival=(ps(500.0), ps(4000.0)),
            driver=Driver(resistance=200.0),
        )
        status, text = harness.client._request_text("POST", "/solve", {
            "net": tree_to_dict(big),
            "library": library_to_dict(paper_library(8)),
            "algorithm": "fast",
            "backend": "auto",
            "options": {},
            "deadline_ms": 1e-4,
        })
        assert status == 504
        payload = json.loads(text)
        assert re.fullmatch(r"[0-9a-f]{16}", payload["request_id"])

    def test_404_payload_echoes_request_id(self, harness):
        status, text = harness.client._request_text("GET", "/nowhere")
        assert status == 404
        assert re.fullmatch(r"[0-9a-f]{16}",
                            json.loads(text)["request_id"])

    def test_access_log_correlates_with_error_payload(self, harness):
        stream = io.StringIO()
        root = logging.getLogger()
        saved_handlers, saved_level = root.handlers[:], root.level
        handler = configure_json_logging(stream=stream)
        try:
            harness.client.solve(
                tree_to_dict(small_net()),
                library_to_dict(paper_library(4)),
                algorithm="fast",
            )
            status, text = harness.client._request_text("GET", "/nowhere")
            assert status == 404
        finally:
            root.removeHandler(handler)
            root.handlers[:] = saved_handlers
            root.setLevel(saved_level)
        error_id = json.loads(text)["request_id"]
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        access = [l for l in lines if l["logger"] == "repro.service.access"]
        assert len(access) >= 2  # one per request, success and error alike
        assert all(re.fullmatch(r"[0-9a-f]{16}", l["request_id"])
                   for l in access)
        ok = [l for l in access if l["status"] == 200]
        assert ok and ok[0]["level"] == "INFO"
        failed = [l for l in access if l["status"] == 404]
        assert failed and failed[0]["level"] == "WARNING"
        # The id in the log line IS the id in the error payload: the
        # whole point of correlation.
        assert failed[0]["request_id"] == error_id
        assert failed[0]["error"] == "unknown path '/nowhere'"
