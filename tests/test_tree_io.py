"""JSON serialization round-trip tests."""

import pytest

from repro import (
    Driver,
    evaluate_slack,
    insert_buffers,
    load_tree,
    paper_library,
    random_tree_net,
    save_tree,
    two_pin_net,
)
from repro.errors import TreeError
from repro.tree.io import (
    library_from_dict,
    library_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.units import fF, ps


@pytest.fixture
def net():
    return random_tree_net(
        10, seed=4, required_arrival=(ps(100.0), ps(900.0)), driver=Driver(300.0)
    )


def test_round_trip_preserves_counts(net):
    copy = tree_from_dict(tree_to_dict(net))
    assert copy.num_nodes == net.num_nodes
    assert copy.num_sinks == net.num_sinks
    assert copy.num_buffer_positions == net.num_buffer_positions


def test_round_trip_preserves_driver(net):
    copy = tree_from_dict(tree_to_dict(net))
    assert copy.driver == net.driver


def test_round_trip_preserves_optimal_slack(net):
    # The strongest invariant: the reloaded instance is the same problem.
    library = paper_library(4)
    copy = tree_from_dict(tree_to_dict(net))
    original = insert_buffers(net, library)
    reloaded = insert_buffers(copy, library)
    assert reloaded.slack == pytest.approx(original.slack, abs=1e-18)


def test_round_trip_preserves_allowed_buffers():
    from repro import RoutingTree

    tree = RoutingTree.with_source()
    tree.add_internal(0, 1.0, fF(1.0), allowed_buffers=["a", "b"])
    tree.add_sink(1, 1.0, fF(1.0), capacitance=fF(2.0), required_arrival=0.0)
    copy = tree_from_dict(tree_to_dict(tree))
    assert copy.node(1).allowed_buffers == frozenset({"a", "b"})


def test_file_round_trip(tmp_path, net):
    path = tmp_path / "net.json"
    save_tree(net, path)
    copy = load_tree(path)
    assert copy.num_nodes == net.num_nodes
    assert evaluate_slack(copy) == pytest.approx(evaluate_slack(net), abs=1e-18)


def test_rejects_unknown_version(net):
    data = tree_to_dict(net)
    data["format_version"] = 99
    with pytest.raises(TreeError):
        tree_from_dict(data)


def test_rejects_missing_source():
    with pytest.raises(TreeError):
        tree_from_dict({"format_version": 1, "nodes": []})


def test_rejects_orphan_node(net):
    data = tree_to_dict(net)
    del data["nodes"][1]["edge"]
    with pytest.raises(TreeError):
        tree_from_dict(data)


def test_rejects_unknown_kind(net):
    data = tree_to_dict(net)
    data["nodes"][1]["kind"] = "mystery"
    with pytest.raises(TreeError):
        tree_from_dict(data)


def test_positions_preserved():
    net = two_pin_net(length=100.0, num_segments=2)
    copy = tree_from_dict(tree_to_dict(net))
    assert copy.node(1).position == (50.0, 0.0)


def test_library_round_trip():
    library = paper_library(8)
    copy = library_from_dict(library_to_dict(library))
    assert copy == library


def test_library_version_check():
    library = paper_library(2)
    data = library_to_dict(library)
    data["format_version"] = 0
    with pytest.raises(TreeError):
        library_from_dict(data)
