"""Public API dispatch tests."""

import pytest

from repro import BufferLibrary, insert_buffers
from repro.core.api import ALGORITHMS
from repro.errors import AlgorithmError


def test_algorithm_names_exported():
    assert set(ALGORITHMS) == {"fast", "lillis", "van_ginneken"}


def test_unknown_algorithm_rejected(line_net, small_library):
    with pytest.raises(AlgorithmError):
        insert_buffers(line_net, small_library, algorithm="magic")


def test_default_is_fast(line_net, small_library):
    assert insert_buffers(line_net, small_library).stats.algorithm == "fast"


def test_options_rejected_for_lillis(line_net, small_library):
    with pytest.raises(AlgorithmError):
        insert_buffers(line_net, small_library, algorithm="lillis",
                       destructive_pruning=True)


def test_options_rejected_for_van_ginneken(line_net, single_buffer):
    with pytest.raises(AlgorithmError):
        insert_buffers(line_net, BufferLibrary([single_buffer]),
                       algorithm="van_ginneken", destructive_pruning=True)


def test_van_ginneken_via_dispatch(line_net, single_buffer):
    result = insert_buffers(line_net, BufferLibrary([single_buffer]),
                            algorithm="van_ginneken")
    assert result.stats.algorithm == "van_ginneken"


def test_result_str_and_properties(line_net, small_library):
    result = insert_buffers(line_net, small_library)
    assert "slack" in str(result)
    assert result.num_buffers == len(result.assignment)
    counts = result.buffer_counts_by_type()
    assert sum(counts.values()) == result.num_buffers
    assert result.total_cost == pytest.approx(
        sum(b.cost for b in result.assignment.values())
    )


def test_package_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__
