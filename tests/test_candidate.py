"""Candidate, decision-DAG and driver-evaluation tests."""

import pytest

from helpers import make_candidates

from repro import BufferType
from repro.core.candidate import (
    BufferDecision,
    Candidate,
    MergeDecision,
    SinkDecision,
    best_candidate_for_driver,
    reconstruct_assignment,
)
from repro.units import fF, ps


def test_dominates():
    a = Candidate(q=5.0, c=1.0, decision=SinkDecision(0))
    b = Candidate(q=4.0, c=2.0, decision=SinkDecision(0))
    assert a.dominates(b)
    assert not b.dominates(a)
    assert a.dominates(a)


def test_dominates_tradeoff_neither():
    a = Candidate(q=5.0, c=3.0, decision=SinkDecision(0))
    b = Candidate(q=4.0, c=1.0, decision=SinkDecision(0))
    assert not a.dominates(b)
    assert not b.dominates(a)


def test_reconstruct_sink_only():
    assert reconstruct_assignment(SinkDecision(3)) == {}


def test_reconstruct_buffer_chain():
    buf1 = BufferType("x", 100.0, fF(1.0), ps(1.0))
    buf2 = BufferType("y", 200.0, fF(2.0), ps(2.0))
    decision = BufferDecision(7, buf2, BufferDecision(3, buf1, SinkDecision(1)))
    assert reconstruct_assignment(decision) == {7: buf2, 3: buf1}


def test_reconstruct_merge_collects_both_sides():
    buf = BufferType("x", 100.0, fF(1.0), ps(1.0))
    left = BufferDecision(2, buf, SinkDecision(0))
    right = BufferDecision(5, buf, SinkDecision(1))
    assert reconstruct_assignment(MergeDecision(left, right)) == {2: buf, 5: buf}


def test_reconstruct_deep_chain_iterative():
    # 50k-deep chain must not hit the recursion limit.
    buf = BufferType("x", 100.0, fF(1.0), ps(1.0))
    decision = SinkDecision(0)
    for node_id in range(1, 50_001):
        decision = BufferDecision(node_id, buf, decision)
    assignment = reconstruct_assignment(decision)
    assert len(assignment) == 50_000


def test_best_candidate_for_driver_picks_max_q_minus_rc():
    candidates = make_candidates([(0.0, 0.0), (4.0, 1.0), (6.0, 2.0)])
    # R = 1: values 0, 3, 4 -> last wins.
    assert best_candidate_for_driver(candidates, 1.0) is candidates[2]
    # R = 3: values 0, 1, 0 -> middle wins.
    assert best_candidate_for_driver(candidates, 3.0) is candidates[1]


def test_best_candidate_tie_prefers_min_c():
    candidates = make_candidates([(1.0, 0.0), (2.0, 1.0)])
    # R = 1: both value 1 -> min-c candidate.
    assert best_candidate_for_driver(candidates, 1.0) is candidates[0]


def test_best_candidate_empty_list():
    assert best_candidate_for_driver([], 1.0) is None


def test_candidate_repr():
    text = repr(Candidate(q=1e-12, c=2e-15, decision=SinkDecision(0)))
    assert "q=" in text and "c=" in text


def test_decision_reprs():
    buf = BufferType("x", 100.0, fF(1.0), ps(1.0))
    assert "3" in repr(SinkDecision(3))
    assert "x" in repr(BufferDecision(1, buf, SinkDecision(0)))
    assert "Merge" in repr(MergeDecision(SinkDecision(0), SinkDecision(1)))
