"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` can fall back to the legacy ``setup.py develop``
path on offline machines where PEP 517 builds (which require the
``wheel`` distribution) are unavailable.
"""

from setuptools import setup

setup()
