#!/usr/bin/env python3
"""Fit the routing cost-model artifact from committed benchmark sweeps.

Produces ``src/repro/routing/model_default.json``, the versioned
artifact :mod:`repro.routing.cost_model` ships with.  Two data sources:

1. **Committed BENCH files** (offline, the authoritative large-work
   anchors): ``BENCH_PR4.json`` fig4 points give walk and compiled
   seconds per backend at ``b=32``, positions 500..8000;
   ``BENCH_PR6.json`` gives the batch-axis speedup surface over
   ``(work, lanes)``; ``BENCH_PR5.json`` gives the splice overhead
   fraction (``1/speedup - executed_fraction`` per edit class);
   ``BENCH_PR7.json`` engaged cells give the partitioned solve's
   residual fraction and planning overhead.
2. **Micro-calibration** (a few seconds of local solves on tiny nets):
   the committed sweeps never measured nets below 500 positions, but
   routing's most consequential calls are exactly there — the numpy
   launch-latency floor that makes ``object`` beat ``soa`` on small
   work.  ``--no-calibrate`` skips it and clamps the curves at the
   smallest committed anchor instead.

The curves are stored as piecewise-linear knots over the DP work
product ``positions^2 * library_size`` (the paper's O(b n^2));
prediction-time interpolation lives in
:func:`repro.routing.cost_model._interp`.

Usage::

    PYTHONPATH=src python tools/fit_routing_model.py \
        --out src/repro/routing/model_default.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

MODEL_VERSION = "routing-model/1"

#: (sinks, seed, library_size) cells of the micro-calibration sweep —
#: small nets only; the committed sweeps own the large end.
CALIBRATION_CELLS = (
    (2, 3, 4),
    (4, 5, 8),
    (8, 11, 8),
    (16, 7, 16),
    (32, 13, 32),
    (64, 17, 32),
    (96, 19, 8),
    (128, 23, 32),
)


def _best_of(fn, repeats: int = 5) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def calibrate(repeats: int = 5) -> dict:
    """Measure the four solo strategies on tiny nets; knots by strategy."""
    from repro import paper_library
    from repro.core.api import insert_buffers
    from repro.core.schedule import auto_compile, compile_net
    from repro.core.stores import resolve_backend
    from repro.tree.builders import random_tree_net

    backends = ["object"]
    if resolve_backend("auto") == "soa":
        backends.append("soa")
    knots: dict = {}
    for sinks, seed, b in CALIBRATION_CELLS:
        library = paper_library(b)
        tree = random_tree_net(sinks, seed=seed)
        compiled = compile_net(tree, library)
        # The paper-complexity axis O(b n^2) — see
        # repro.routing.features.RequestFeatures.work.
        work = compiled.num_buffer_positions ** 2 * b
        for backend in backends:
            # Warm the kernels/plans outside the timed region.
            insert_buffers(compiled, library, backend=backend)
            compiled_seconds = _best_of(
                lambda: insert_buffers(compiled, library, backend=backend),
                repeats,
            )
            with auto_compile(False):
                walk_seconds = _best_of(
                    lambda: insert_buffers(tree, library, backend=backend),
                    repeats,
                )
            knots.setdefault(f"{backend}-compiled", []).append(
                [work, compiled_seconds]
            )
            knots.setdefault(f"{backend}-walk", []).append(
                [work, walk_seconds]
            )
    return knots


def bench_anchors(pr4: dict) -> dict:
    """Large-work knots from the committed PR4 fig4 sweep."""
    library_size = pr4["fig4"]["library_size"]
    knots: dict = {}
    for point in pr4["fig4"]["points"]:
        work = point["positions"] ** 2 * library_size
        backend = point["backend"]
        knots.setdefault(f"{backend}-compiled", []).append(
            [work, point["compiled_seconds"]]
        )
        knots.setdefault(f"{backend}-walk", []).append(
            [work, point["tree_walk_seconds"]]
        )
    return knots


def _merge_knots(*sources: dict) -> dict:
    merged: dict = {}
    for source in sources:
        for key, points in source.items():
            merged.setdefault(key, []).extend(points)
    for key, points in merged.items():
        points.sort(key=lambda knot: knot[0])
        deduped = []
        for work, seconds in points:
            if deduped and deduped[-1][0] == work:
                deduped[-1][1] = min(deduped[-1][1], seconds)
            else:
                deduped.append([work, seconds])
        merged[key] = deduped
    return merged


#: (sinks, seed) cells of the small-scale batch calibration and the
#: lane widths measured per cell (library size fixed at b=8 — the
#: regime the committed PR6 trunk sweep never covered).
BATCH_CALIBRATION_CELLS = ((32, 13), (64, 17))
BATCH_CALIBRATION_LANES = (4, 16, 64)


def calibrate_batch(repeats: int = 3) -> dict:
    """Measure batch-axis speedup rows at small work (b=8 corner groups).

    The committed PR6 surface was swept on ``b=32`` trunk nets, whose
    smallest work cell (~320k) is far above where mixed workloads live;
    extrapolating it downward overstates the batch win on small nets.
    These rows anchor the surface's low-work edge with directly
    measured ``solve_group`` vs per-net sequential speedups.
    """
    from repro import paper_library
    from repro.core.api import insert_buffers
    from repro.core.schedule import compile_net, run_compiled_group
    from repro.experiments.workloads import corner_variants
    from repro.tree.builders import random_tree_net

    rows: dict = {}
    library = paper_library(8)
    for sinks, seed in BATCH_CALIBRATION_CELLS:
        base = random_tree_net(sinks, seed=seed)
        compiled = compile_net(base, library)
        work = compiled.num_buffer_positions ** 2 * library.size
        speedups = []
        for lanes in BATCH_CALIBRATION_LANES:
            variants = [
                compile_net(tree, library)
                for _, tree in corner_variants(base, lanes)
            ]
            # Warm kernels/plans outside the timed region.
            for net in variants:
                insert_buffers(net, library, backend="soa")
            run_compiled_group(variants, library)
            sequential = _best_of(
                lambda: [
                    insert_buffers(net, library, backend="soa")
                    for net in variants
                ],
                repeats,
            )
            batched = _best_of(
                lambda: run_compiled_group(variants, library), repeats
            )
            speedups.append(max(sequential / batched, 0.05))
        rows[work] = speedups
    return rows


def batch_surface(pr6: dict, calibrated_rows: dict = None) -> dict:
    """Speedup grid over ``(work, lanes)`` — PR6 trunk rows at the
    large-work end plus optional small-work calibration rows."""
    library_size = pr6["batch_axis"]["library_size"]
    points = pr6["batch_axis"]["points"]
    lanes = sorted({p["lanes"] for p in points})
    rows: dict = {}
    for point in points:
        work = point["positions"] ** 2 * library_size
        row = rows.setdefault(work, [1.0] * len(lanes))
        row[lanes.index(point["lanes"])] = point["speedup"]
    for work, speedups in (calibrated_rows or {}).items():
        # Calibration rows are measured at BATCH_CALIBRATION_LANES;
        # resample them onto the PR6 lane axis by nearest measured lane.
        resampled = []
        for lane in lanes:
            nearest = min(
                range(len(BATCH_CALIBRATION_LANES)),
                key=lambda i: abs(BATCH_CALIBRATION_LANES[i] - lane),
            )
            resampled.append(speedups[nearest])
        rows[work] = resampled
    works = sorted(rows)
    return {
        "work": works,
        "lanes": lanes,
        "speedup": [rows[work] for work in works],
    }


def splice_overhead(pr5: dict) -> float:
    """Median of ``1/speedup - executed_fraction`` over edit classes."""
    overheads = []
    for point in pr5["incremental"]["points"]:
        fraction = point.get("mean_executed_fraction")
        if fraction is None:
            continue
        for bucket in point["classes"].values():
            speedup = bucket.get("speedup_geomean")
            if speedup and speedup > 0:
                overheads.append(max(1.0 / speedup - fraction, 0.0))
    if not overheads:
        return 0.1
    return min(max(statistics.median(overheads), 0.01), 0.5)


def parallel_params(pr7: dict) -> dict:
    residuals, overheads = [], []
    for point in pr7["random"]["points"]:
        for cell in point["cells"]:
            if cell.get("engaged"):
                residuals.append(cell["residual_fraction"])
                # dispatch_seconds includes waiting for worker results,
                # so only the cut-planning time counts as overhead here.
                overheads.append(cell.get("plan_seconds", 0.0))
    return {
        "residual_fraction": (
            round(statistics.mean(residuals), 4) if residuals else 0.3
        ),
        "overhead_seconds": (
            round(statistics.mean(overheads), 4) if overheads else 0.01
        ),
    }


def fit(bench_dir: Path, calibrate_local: bool, repeats: int) -> dict:
    pr4 = json.loads((bench_dir / "BENCH_PR4.json").read_text())
    pr5 = json.loads((bench_dir / "BENCH_PR5.json").read_text())
    pr6 = json.loads((bench_dir / "BENCH_PR6.json").read_text())
    pr7 = json.loads((bench_dir / "BENCH_PR7.json").read_text())

    sources = [bench_anchors(pr4)]
    calibrated = False
    batch_rows: dict = {}
    if calibrate_local:
        sources.insert(0, calibrate(repeats))
        calibrated = True
        from repro.core.stores.batch_axis import batch_axis_available

        if batch_axis_available():
            batch_rows = calibrate_batch(repeats)
    base = _merge_knots(*sources)
    for key in ("soa-compiled", "soa-walk"):
        # A numpy-less calibration box leaves the soa curves to the
        # committed anchors alone — never drop a required strategy.
        if key not in base:
            base[key] = [
                [knot[0], knot[1] * 1.05]
                for knot in base[key.replace("soa", "object")]
            ]
    return {
        "version": MODEL_VERSION,
        "fitted_from": [
            "BENCH_PR4.json", "BENCH_PR5.json",
            "BENCH_PR6.json", "BENCH_PR7.json",
        ],
        "calibrated": calibrated,
        "base": {
            key: {"knots": knots} for key, knots in sorted(base.items())
        },
        "batch_axis": batch_surface(pr6, batch_rows),
        "splice": {"overhead_fraction": splice_overhead(pr5)},
        "parallel": parallel_params(pr7),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-dir", type=Path, default=Path("."),
        help="directory holding the committed BENCH_PR*.json files",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path("src/repro/routing/model_default.json"),
    )
    parser.add_argument(
        "--no-calibrate", action="store_true",
        help="skip the local micro-calibration sweep",
    )
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    spec = fit(args.bench_dir, not args.no_calibrate, args.repeats)

    # The artifact must load through the runtime validator.
    from repro.routing.cost_model import CostModel

    CostModel.from_spec(spec)

    args.out.write_text(json.dumps(spec, indent=2, sort_keys=True) + "\n")
    total_knots = sum(len(c["knots"]) for c in spec["base"].values())
    print(
        f"wrote {args.out}: {len(spec['base'])} strategy curves, "
        f"{total_knots} knots, splice overhead "
        f"{spec['splice']['overhead_fraction']:.3f}, parallel residual "
        f"{spec['parallel']['residual_fraction']:.3f}"
    )
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main())
