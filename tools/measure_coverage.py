#!/usr/bin/env python3
"""Measure line coverage of ``src/repro`` under the tier-1 suite.

A dependency-free stand-in for ``coverage.py``: a ``sys.settrace``
hook records executed lines in ``src/repro`` while the test suite runs
in-process, and the denominator is every executable line (enumerated
from compiled code objects via ``co_lines``) of every source file under
the package — imported or not.  Numbers track ``pytest --cov=repro``
closely enough to pick and defend the CI job's ``--cov-fail-under``
floor on a box where ``pytest-cov`` is not installed.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import os
import sys
import threading
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
_PREFIX = str(SRC) + os.sep

_executed: dict = {}


def _tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(_PREFIX):
        return None
    if event == "line":
        _executed.setdefault(filename, set()).add(frame.f_lineno)
    return _tracer


def executable_lines(path: Path) -> set:
    """Line numbers ``coverage.py`` would count as statements: every
    line named by a code object in the compiled module, recursively."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(
            line for _, _, line in obj.co_lines() if line is not None
        )
        stack.extend(
            const for const in obj.co_consts
            if isinstance(const, type(code))
        )
    # co_lines names the module's synthetic line 0 on some versions.
    lines.discard(0)
    return lines


def main(argv) -> int:
    import pytest

    args = argv[1:] or ["-x", "-q", "tests"]
    threading.settrace(_tracer)
    sys.settrace(_tracer)
    try:
        status = pytest.main(args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if status != 0:
        print(f"coverage: test run failed (exit {status}); no report")
        return int(status)

    total_executable = 0
    total_executed = 0
    rows = []
    for path in sorted(SRC.rglob("*.py")):
        possible = executable_lines(path)
        hit = _executed.get(str(path), set()) & possible
        total_executable += len(possible)
        total_executed += len(hit)
        percent = 100.0 * len(hit) / len(possible) if possible else 100.0
        rows.append((percent, path, len(hit), len(possible)))
    for percent, path, hit, possible in rows:
        print(
            f"coverage: {path.relative_to(SRC.parent)!s:<44} "
            f"{hit:>5}/{possible:<5} {percent:6.1f}%"
        )
    total = 100.0 * total_executed / total_executable
    print(
        f"coverage: TOTAL src/repro "
        f"{total_executed}/{total_executable} lines = {total:.1f}%"
    )
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main(sys.argv))
