#!/usr/bin/env python3
"""CI perf smoke gate over a freshly generated ``BENCH_PR4.json``.

Fails (exit 1) when the compiled SoA backend is slower than the
compiled object backend on any Figure 4 trunk point at or above the
gated position count — the PR2 regression shape this repository's
kernel engine exists to keep reversed.  Thresholds are read from the
benchmark file itself (``ci_gate``), so the bench and its gate cannot
drift apart:

* ``ci_gate.min_positions`` — points with at least this many *actual*
  positions are gated (the CI job runs at ``REPRO_BENCH_SCALE=0.25``,
  so the gated points are the top of the scaled sweep);
* ``ci_gate.max_soa_over_object`` — compiled-soa seconds must be at
  most this multiple of compiled-object seconds.

Usage::

    python tools/perf_gate.py BENCH_PR4.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def check(path: Path) -> int:
    payload = json.loads(path.read_text())
    gate = payload.get("ci_gate")
    if not gate:
        print(f"perf gate: {path} has no ci_gate section")
        return 1
    min_positions = gate["min_positions"]
    max_ratio = gate["max_soa_over_object"]

    by_position = {}
    for point in payload["fig4"]["points"]:
        by_position.setdefault(point["positions"], {})[point["backend"]] = (
            point["compiled_seconds"]
        )

    gated = {
        positions: seconds
        for positions, seconds in by_position.items()
        if positions >= min_positions and "soa" in seconds
    }
    if not gated:
        print(
            f"perf gate: no fig4 points with >= {min_positions} positions "
            "and a soa measurement — nothing to gate (is numpy installed "
            "and the scale high enough?)"
        )
        return 1

    failures = 0
    for positions in sorted(gated):
        seconds = gated[positions]
        ratio = seconds["soa"] / seconds["object"]
        verdict = "ok" if ratio <= max_ratio else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(
            f"perf gate: n={positions:>5}  object "
            f"{seconds['object']*1e3:9.2f}ms  soa {seconds['soa']*1e3:9.2f}ms"
            f"  soa/object {ratio:.3f} (limit {max_ratio:.3f})  {verdict}"
        )
    if failures:
        print(
            f"perf gate: {failures} point(s) regressed — compiled soa is "
            "slower than compiled object in the gated range"
        )
        return 1
    print("perf gate: pass")
    return 0


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    return check(Path(argv[1]))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
