#!/usr/bin/env python3
"""CI perf smoke gate over freshly generated benchmark JSON files.

Accepts any mix of the repository's benchmark trajectory files and
dispatches on their content; exit 1 when any gated measurement
regresses.  Thresholds always come from the benchmark file itself
(``ci_gate``), so a bench and its gate cannot drift apart.

* ``BENCH_PR4.json`` (has ``fig4``) — the kernel-engine gate: compiled
  SoA must not be slower than compiled object on any Figure 4 trunk
  point at or above ``ci_gate.min_positions`` (the PR2 regression shape
  this repository's kernel engine exists to keep reversed).
* ``BENCH_PR5.json`` (has ``incremental``) — the incremental-engine
  gate: at every trunk point with at least ``ci_gate.min_positions``
  actual positions, each backend's edit-replay headline (the geometric
  mean of per-edit incremental-vs-scratch speedups; see
  ``benchmarks/bench_incremental.py`` for the workload definition)
  must be at least ``ci_gate.min_speedup``.
* ``BENCH_PR6.json`` (has ``batch_axis``) — the batch-axis gate: every
  multi-corner group cell with at least ``ci_gate.min_positions``
  actual positions and at least ``ci_gate.min_group`` lanes must solve
  at least ``ci_gate.min_speedup`` times faster through one
  ``solve_group`` call than through per-net sequential solves of the
  same pre-compiled lanes (see ``benchmarks/bench_batch_axis.py``).
  Smaller cells are printed as ungated context.
* ``BENCH_PR8.json`` (has ``routing``) — the execution-routing gate:
  on the mixed replay corpus the ``model`` policy's total must reach
  ``ci_gate.min_model_speedup_vs_oracle`` of the oracle (per-request
  best measured plan) and ``ci_gate.min_model_speedup_vs_static`` of
  the legacy static heuristics (see ``benchmarks/bench_routing.py``).
* ``BENCH_PR9.json`` (has ``resilience``) — the chaos gate: under the
  committed fault plan (seeded worker crashes and hangs; see
  ``benchmarks/bench_resilience.py``) at least
  ``ci_gate.min_success_rate`` of requests must return an answer, and
  with ``ci_gate.require_bit_identical`` every answer must match the
  healthy in-process solve bit-for-bit.
* ``BENCH_PR10.json`` (has ``obs``) — the observability-overhead gate:
  on the Figure-4 trunk compiled solve, the disabled observability
  path (thread-local polls, nothing installed) must stay within
  ``ci_gate.max_disabled_over_bypass`` of the hard-bypassed baseline
  (see ``benchmarks/bench_obs.py``).  The fully enabled
  profiling+tracing cost is printed as ungated context.
* ``BENCH_PR7.json`` (has ``fig4_trunk``) — the partitioned-solve gate:
  at every random-topology position level with at least
  ``ci_gate.min_positions`` actual positions, the best
  serial/partitioned speedup among engaged cells with at least
  ``ci_gate.min_workers`` workers must reach ``ci_gate.min_speedup``
  (see ``benchmarks/bench_parallel.py``).  Trunk cells are fallback
  context, never gated; the whole gate is skipped with a note when
  ``meta.cpu_count`` is below ``min_workers`` (a single-core box
  cannot measure multi-core speedup).

Usage::

    python tools/perf_gate.py BENCH_PR4.json [BENCH_PR5.json ...]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def check_obs_overhead(payload: dict, path: Path) -> int:
    gate = payload["ci_gate"]
    max_ratio = gate["max_disabled_over_bypass"]

    report = payload["obs"]
    ratio = report["disabled_over_bypass"]
    print(
        f"perf gate: n={report['positions']} backend={report['backend']}  "
        f"bypass {report['bypass_seconds']*1e3:9.2f}ms  "
        f"disabled {report['disabled_seconds']*1e3:9.2f}ms  "
        f"enabled {report['enabled_seconds']*1e3:9.2f}ms "
        f"({report['enabled_over_bypass']:.2f}x, info)"
    )
    verdict = "ok" if ratio <= max_ratio else "FAIL"
    print(
        f"perf gate: disabled/bypass {ratio:.4f} "
        f"(limit {max_ratio:.2f})  {verdict}"
    )
    if verdict == "FAIL":
        print(
            "perf gate: the disabled observability path is no longer "
            "near-free — an instrumentation check leaked into a hot loop"
        )
        return 1
    return 0


def check_resilience(payload: dict, path: Path) -> int:
    gate = payload["ci_gate"]
    min_success = gate["min_success_rate"]
    require_identical = gate.get("require_bit_identical", False)

    report = payload["resilience"]
    success_rate = report["success_rate"]
    identical_fraction = report["bit_identical_fraction"]
    latency = report["latency"]
    supervisor = report["supervisor"]
    print(
        f"perf gate: chaos run {report['successes']}/{report['requests']} "
        f"ok, {report['bit_identical']} bit-identical, "
        f"p50 {latency['p50_seconds']*1e3:.1f}ms "
        f"p99 {latency['p99_seconds']*1e3:.1f}ms "
        f"({supervisor['retries']} retries, {supervisor['respawns']} "
        f"respawns, {supervisor['fallbacks']} fallbacks)"
    )

    failures = 0
    verdict = "ok" if success_rate >= min_success else "FAIL"
    if verdict == "FAIL":
        failures += 1
    print(
        f"perf gate: success rate {success_rate:.3f} "
        f"(floor {min_success:.2f})  {verdict}"
    )
    if require_identical:
        verdict = "ok" if identical_fraction == 1.0 else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(
            f"perf gate: bit-identical fraction {identical_fraction:.3f} "
            f"(must be 1.000)  {verdict}"
        )
    for failure in report["failures"]:
        print(f"perf gate:   escaped failure: {failure}")
    if failures:
        print(
            f"perf gate: {failures} resilience threshold(s) missed — "
            "requests failed or answers drifted under the fault plan"
        )
    return 1 if failures else 0


def check_fig4(payload: dict, path: Path) -> int:
    gate = payload["ci_gate"]
    min_positions = gate["min_positions"]
    max_ratio = gate["max_soa_over_object"]

    by_position = {}
    for point in payload["fig4"]["points"]:
        by_position.setdefault(point["positions"], {})[point["backend"]] = (
            point["compiled_seconds"]
        )

    gated = {
        positions: seconds
        for positions, seconds in by_position.items()
        if positions >= min_positions and "soa" in seconds
    }
    if not gated:
        print(
            f"perf gate: no fig4 points with >= {min_positions} positions "
            "and a soa measurement — nothing to gate (is numpy installed "
            "and the scale high enough?)"
        )
        return 1

    failures = 0
    for positions in sorted(gated):
        seconds = gated[positions]
        ratio = seconds["soa"] / seconds["object"]
        verdict = "ok" if ratio <= max_ratio else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(
            f"perf gate: n={positions:>5}  object "
            f"{seconds['object']*1e3:9.2f}ms  soa {seconds['soa']*1e3:9.2f}ms"
            f"  soa/object {ratio:.3f} (limit {max_ratio:.3f})  {verdict}"
        )
    if failures:
        print(
            f"perf gate: {failures} point(s) regressed — compiled soa is "
            "slower than compiled object in the gated range"
        )
    return 1 if failures else 0


def check_incremental(payload: dict, path: Path) -> int:
    gate = payload["ci_gate"]
    min_positions = gate["min_positions"]
    min_speedup = gate["min_speedup"]
    # The gate pins the production path (backend="auto" at generation
    # time); other backends are reported ungated.
    gate_backend = gate.get("backend")

    points = payload["incremental"]["points"]
    gated = [
        point for point in points
        if point["positions"] >= min_positions
        and (gate_backend is None or point["backend"] == gate_backend)
    ]
    if not gated:
        print(
            f"perf gate: no incremental points with >= {min_positions} "
            f"positions on backend {gate_backend!r} — nothing to gate "
            "(is the scale high enough?)"
        )
        return 1

    failures = 0
    for point in points:
        if point["positions"] < min_positions:
            continue
        speedup = point["geomean_speedup"]
        if point in gated:
            verdict = "ok" if speedup >= min_speedup else "FAIL"
        else:
            verdict = "(info)"
        if verdict == "FAIL":
            failures += 1
        detail = "  ".join(
            f"{name} {bucket['speedup_total']:.2f}x"
            for name, bucket in point["classes"].items()
        )
        print(
            f"perf gate: n={point['positions']:>5} {point['backend']:<7}"
            f" edit-replay geomean {speedup:8.2f}x "
            f"(floor {min_speedup:.1f}x)  {verdict}   [{detail}]"
        )
    if failures:
        print(
            f"perf gate: {failures} point(s) below the incremental "
            "edit-replay speedup floor"
        )
    return 1 if failures else 0


def check_batch_axis(payload: dict, path: Path) -> int:
    gate = payload["ci_gate"]
    min_positions = gate["min_positions"]
    min_group = gate["min_group"]
    min_speedup = gate["min_speedup"]

    points = payload["batch_axis"]["points"]
    gated = [
        point for point in points
        if point["positions"] >= min_positions
        and point["lanes"] >= min_group
    ]
    if not gated:
        print(
            f"perf gate: no batch-axis cells with >= {min_positions} "
            f"positions and >= {min_group} lanes — nothing to gate "
            "(is the scale high enough?)"
        )
        return 1

    failures = 0
    for point in points:
        speedup = point["speedup"]
        if point in gated:
            verdict = "ok" if speedup >= min_speedup else "FAIL"
        else:
            verdict = "(info)"
        if verdict == "FAIL":
            failures += 1
        print(
            f"perf gate: n={point['positions']:>5} "
            f"lanes={point['lanes']:>3}"
            f"  sequential {point['sequential_seconds']*1e3:9.1f}ms"
            f"  batched {point['batched_seconds']*1e3:9.1f}ms"
            f"  speedup {speedup:6.2f}x (floor {min_speedup:.1f}x)  "
            f"{verdict}"
        )
    if failures:
        print(
            f"perf gate: {failures} cell(s) below the batch-axis "
            "group-solve speedup floor"
        )
    return 1 if failures else 0


def check_parallel(payload: dict, path: Path) -> int:
    gate = payload["ci_gate"]
    min_positions = gate["min_positions"]
    min_workers = gate["min_workers"]
    min_speedup = gate["min_speedup"]

    cpu_count = payload.get("meta", {}).get("cpu_count")
    if cpu_count is not None and cpu_count < min_workers:
        # A box with fewer cores than the gated worker count cannot
        # honestly measure multi-core speedup — worker processes just
        # time-slice one core.  The numbers stay in the file as
        # context; the gate only binds where it can mean something.
        print(
            f"perf gate: skipping parallel speedup gate — generated on "
            f"{cpu_count} core(s), gate needs >= {min_workers} "
            "(see meta.cpu_count)"
        )
        return 0

    failures = 0
    gated_levels = 0
    for point in payload["random"]["points"]:
        positions = point["positions"]
        level_gated = positions >= min_positions
        best = 0.0
        for cell in point["cells"]:
            qualifying = (
                level_gated and cell["workers"] >= min_workers
                and cell["engaged"]
            )
            if qualifying:
                best = max(best, cell["speedup"])
            note = "" if cell["engaged"] else " fallback"
            print(
                f"perf gate: n={positions:>7} workers={cell['workers']:>2}"
                f"  serial {point['serial_seconds']:8.2f}s"
                f"  partitioned {cell['partitioned_seconds']:8.2f}s"
                f"  speedup {cell['speedup']:5.2f}x"
                f"  {'gated' if qualifying else '(info)'}{note}"
            )
        if level_gated:
            gated_levels += 1
            verdict = "ok" if best >= min_speedup else "FAIL"
            if verdict == "FAIL":
                failures += 1
            print(
                f"perf gate: n={positions:>7} best gated speedup "
                f"{best:5.2f}x (floor {min_speedup:.1f}x)  {verdict}"
            )
    for point in payload.get("fig4_trunk", {}).get("points", ()):
        for cell in point["cells"]:
            print(
                f"perf gate: trunk n={point['positions']:>7} "
                f"workers={cell['workers']:>2}"
                f"  speedup {cell['speedup']:5.2f}x  (info, "
                f"{'engaged' if cell['engaged'] else 'serial fallback'})"
            )
    if not gated_levels:
        print(
            f"perf gate: no random-topology points with >= {min_positions} "
            "positions — nothing to gate (is the scale high enough?)"
        )
        return 1
    if failures:
        print(
            f"perf gate: {failures} position level(s) below the "
            "partitioned-solve speedup floor"
        )
    return 1 if failures else 0


def check_routing(payload: dict, path: Path) -> int:
    gate = payload["ci_gate"]
    min_vs_oracle = gate["min_model_speedup_vs_oracle"]
    min_vs_static = gate["min_model_speedup_vs_static"]

    report = payload["routing"]
    policies = report["policies"]
    if "model" not in policies:
        print("perf gate: replay report has no 'model' policy bucket")
        return 1

    oracle = report["oracle_seconds"]
    print(
        f"perf gate: {report['requests']} requests, "
        f"parity checked across {report['parity_checked']} plan runs, "
        f"oracle {oracle*1e3:.1f}ms"
    )
    for name, bucket in policies.items():
        print(
            f"perf gate:   {name:<16}"
            f" {bucket['total_seconds']*1e3:9.1f}ms"
            f"  vs-oracle {bucket['speedup_vs_oracle']:5.2f}x"
            f"  vs-static {bucket['speedup_vs_static']:5.2f}x"
        )

    failures = 0
    model = policies["model"]
    vs_oracle = model["speedup_vs_oracle"]
    verdict = "ok" if vs_oracle >= min_vs_oracle else "FAIL"
    if verdict == "FAIL":
        failures += 1
    print(
        f"perf gate: model vs oracle {vs_oracle:.3f} "
        f"(floor {min_vs_oracle:.2f})  {verdict}"
    )
    vs_static = model["speedup_vs_static"]
    verdict = "ok" if vs_static >= min_vs_static else "FAIL"
    if verdict == "FAIL":
        failures += 1
    print(
        f"perf gate: model vs static {vs_static:.3f} "
        f"(floor {min_vs_static:.2f})  {verdict}"
    )
    if failures:
        print(
            f"perf gate: {failures} routing threshold(s) missed — the "
            "model policy is leaving measured wall time on the table"
        )
    return 1 if failures else 0


def check(path: Path) -> int:
    payload = json.loads(path.read_text())
    if not payload.get("ci_gate"):
        print(f"perf gate: {path} has no ci_gate section")
        return 1
    print(f"perf gate: {path}")
    if "obs" in payload:
        return check_obs_overhead(payload, path)
    if "resilience" in payload:
        return check_resilience(payload, path)
    if "routing" in payload:
        return check_routing(payload, path)
    if "incremental" in payload:
        return check_incremental(payload, path)
    if "fig4_trunk" in payload:
        return check_parallel(payload, path)
    if "fig4" in payload:
        return check_fig4(payload, path)
    if "batch_axis" in payload:
        return check_batch_axis(payload, path)
    print(f"perf gate: {path} has no recognized benchmark section")
    return 1


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    status = 0
    for name in argv[1:]:
        status |= check(Path(name))
    if status == 0:
        print("perf gate: pass")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
