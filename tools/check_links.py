#!/usr/bin/env python3
"""Intra-repo Markdown link checker (stdlib only; the CI docs job).

Scans the repo's user-facing Markdown — ``README.md``, everything under
``docs/``, and ``examples/README.md`` — for links and validates the
repo-relative ones:

* inline links ``[text](target)`` and reference definitions
  ``[label]: target``;
* external schemes (``http:``, ``https:``, ``mailto:``) are skipped —
  this checker must work offline and never flake on someone else's
  uptime;
* pure in-page anchors (``#section``) are checked against the headings
  of the same file; ``path#anchor`` checks both the file and, when the
  target is Markdown, the heading;
* everything else must resolve to an existing file or directory
  relative to the Markdown file that links it.

Exit status 0 when every link resolves, 1 otherwise (one line per
broken link) — so CI fails loudly and locally you can just run::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target may carry an optional "title".  Images
#: (``![alt](target)``) match too via the optional leading ``!``.
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ``[label]: target`` reference-style definitions.
_REFERENCE = re.compile(r"^\[[^\]]+\]:\s*(\S+)", re.MULTILINE)
#: Fenced code blocks — links inside them are examples, not links.
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "examples" / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


def links_in(text: str) -> Iterator[str]:
    text = _FENCE.sub("", text)
    for match in _INLINE.finditer(text):
        yield match.group(1)
    for match in _REFERENCE.finditer(text):
        yield match.group(1)


def anchors_in(path: Path) -> set:
    """GitHub-style anchors for every heading in ``path``.

    Fenced code blocks are stripped first — a ``# comment`` inside a
    shell example is not a heading, and treating it as one would let a
    broken ``#fragment`` link pass.
    """
    anchors = set()
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    for line in text.splitlines():
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        slug = re.sub(r"[^\w\s-]", "", title.lower())
        anchors.add(re.sub(r"[\s]+", "-", slug).strip("-"))
    return anchors


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Broken links in one file as ``(target, reason)`` pairs."""
    broken = []
    for target in links_in(path.read_text(encoding="utf-8")):
        if _SCHEME.match(target):
            continue  # external: out of scope by design
        base, _, fragment = target.partition("#")
        if not base:
            if fragment not in anchors_in(path):
                broken.append((target, "no such heading in this file"))
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            broken.append((target, "file does not exist"))
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_in(resolved):
                broken.append(
                    (target, f"no such heading in {base}")
                )
    return broken


def main() -> int:
    total_links = 0
    failures = 0
    for path in doc_files():
        text = path.read_text(encoding="utf-8")
        total_links += sum(1 for _ in links_in(text))
        for target, reason in check_file(path):
            failures += 1
            print(f"{path.relative_to(REPO_ROOT)}: broken link "
                  f"{target!r} ({reason})")
    checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in doc_files())
    if failures:
        print(f"\n{failures} broken link(s) across {checked}")
        return 1
    print(f"ok: {total_links} links checked across {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
